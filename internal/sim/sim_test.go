package sim

import (
	"math/rand"
	"testing"

	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
)

// applyOne runs one fully specified vector through the bit-parallel
// simulator and returns the good output vector.
func applyOne(s *Simulator, vec pattern.Vector) logic.BitVec {
	set := pattern.NewSet(len(vec))
	set.Add(vec)
	b := set.Pack()[0]
	s.Apply(&b)
	out := logic.NewBitVec(s.View.NumOutputs())
	words := make([]logic.Word, s.View.NumOutputs())
	s.GoodOutputs(words)
	for o, w := range words {
		out.Set(o, w&1)
	}
	return out
}

func TestGoodSimC17(t *testing.T) {
	c := gen.C17()
	view := netlist.NewScanView(c)
	s := New(view)
	// c17: out 22 = NAND(10,16), 23 = NAND(16,19) with
	// 10=NAND(1,3), 11=NAND(3,6), 16=NAND(2,11), 19=NAND(11,7).
	cases := []struct {
		in   string // inputs 1,2,3,6,7
		out  string // outputs 22,23
		note string
	}{
		{"00000", "00", "all zero: 10=1,11=1,16=1,19=1 -> 22=0? recompute"},
		{"11111", "11", ""},
		{"10101", "11", ""},
	}
	// Compute expectations with the scalar reference instead of hand values
	// (the literal table is validated separately below).
	for _, tc := range cases {
		vec, err := pattern.FromString(tc.in)
		if err != nil {
			t.Fatal(err)
		}
		got := applyOne(s, vec)
		vals := EvalTernary(view, vec)
		for slot, g := range view.Outputs {
			if got.Get(slot) != vals[g].Bit() {
				t.Errorf("input %s output %d: parallel %d, scalar %d", tc.in, slot, got.Get(slot), vals[g].Bit())
			}
		}
	}
	// One literal hand check: inputs 1=1,2=1,3=0,6=0,7=0:
	// 10=NAND(1,0)=1, 11=NAND(0,0)=1, 16=NAND(1,1)=0, 19=NAND(1,0)=1,
	// 22=NAND(1,0)=1, 23=NAND(0,1)=1.
	vec, _ := pattern.FromString("11000")
	got := applyOne(s, vec)
	if got.Get(0) != 1 || got.Get(1) != 1 {
		t.Errorf("hand check failed: got %s, want 11", got.String(2))
	}
}

// TestParallelMatchesScalarGood cross-validates 64-pattern bit-parallel
// good simulation against the scalar ternary evaluator on random
// sequential circuits (via the scan view).
func TestParallelMatchesScalarGood(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, name := range []string{"s27", "s208", "s298"} {
		c := gen.Profiles[name].MustGenerate(11)
		view := netlist.NewScanView(c)
		s := New(view)
		set := pattern.NewSet(view.NumInputs())
		for i := 0; i < 64; i++ {
			set.Add(pattern.Random(r, view.NumInputs()))
		}
		b := set.Pack()[0]
		s.Apply(&b)
		for p := 0; p < 64; p++ {
			vals := EvalTernary(view, set.Vecs[p])
			for i := range c.Gates {
				g := int32(i)
				want := vals[g].Bit()
				got := (s.GoodWord(g) >> uint(p)) & 1
				if got != want {
					t.Fatalf("%s pattern %d gate %d (%s): parallel %d scalar %d",
						name, p, g, c.Gates[i].Name, got, want)
				}
			}
		}
	}
}

// TestPropagateMatchesReference cross-validates PPSFP fault simulation
// against naive scalar faulty evaluation for every collapsed fault of
// random circuits, on full 64-pattern batches.
func TestPropagateMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, name := range []string{"s27", "s208"} {
		c := gen.Profiles[name].MustGenerate(21)
		view := netlist.NewScanView(c)
		col := fault.Collapse(c)
		s := New(view)
		set := pattern.NewSet(view.NumInputs())
		for i := 0; i < 64; i++ {
			set.Add(pattern.Random(r, view.NumInputs()))
		}
		b := set.Pack()[0]
		s.Apply(&b)
		goodWords := make([]logic.Word, view.NumOutputs())
		s.GoodOutputs(goodWords)
		for _, f := range col.Faults {
			eff := s.Propagate(f)
			for p := 0; p < 64; p++ {
				ref := RefFaultOutputs(view, f, set.Vecs[p])
				// Reconstruct the parallel faulty vector for pattern p.
				got := logic.NewBitVec(view.NumOutputs())
				for o := range goodWords {
					got.Set(o, (goodWords[o]>>uint(p))&1)
				}
				for _, d := range eff.Diffs {
					if d.Bits&(1<<uint(p)) != 0 {
						got.Set(int(d.Slot), 1-got.Get(int(d.Slot)))
					}
				}
				if !got.Equal(ref) {
					t.Fatalf("%s fault %s pattern %d: parallel %s, reference %s",
						name, f.Name(c), p, got.String(view.NumOutputs()), ref.String(view.NumOutputs()))
				}
				detGot := eff.Detect&(1<<uint(p)) != 0
				good := logic.NewBitVec(view.NumOutputs())
				for o := range goodWords {
					good.Set(o, (goodWords[o]>>uint(p))&1)
				}
				if detGot != !ref.Equal(good) {
					t.Fatalf("%s fault %s pattern %d: Detect=%v, reference differs=%v",
						name, f.Name(c), p, detGot, !ref.Equal(good))
				}
			}
		}
	}
}

// TestDFFBranchFaultObservation checks the special case of a branch fault
// on a flip-flop D pin: only that flip-flop's pseudo output sees the forced
// value; sibling fanout of the driver is unaffected.
func TestDFFBranchFaultObservation(t *testing.T) {
	b := netlist.NewBuilder("dffpin")
	a := b.Input("a")
	inv := b.Gate(netlist.Not, "inv", a)
	ff := b.Gate(netlist.DFF, "ff", inv) // D pin driven by inv
	buf := b.Gate(netlist.Buf, "buf", inv)
	n := b.Gate(netlist.And, "n", buf, ff)
	b.Output(n)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	view := netlist.NewScanView(c)
	s := New(view)
	// inv fans out to both the DFF D pin and buf, so the DFF pin fault is a
	// distinct branch fault.
	f := fault.Fault{Gate: ff, Pin: 0, Stuck: 1}
	vec, _ := pattern.FromString("11") // a=1 (inv=0), ff(Q)=1
	set := pattern.NewSet(2)
	set.Add(vec)
	batch := set.Pack()[0]
	s.Apply(&batch)
	eff := s.Propagate(f)
	// Good outputs: n = AND(buf=0, Q=1) = 0; ff.D (pseudo) = inv = 0.
	// Faulty: the D observation is forced to 1; n unchanged.
	if eff.Detect&1 == 0 {
		t.Fatalf("branch fault on D pin not detected")
	}
	if len(eff.Diffs) != 1 || eff.Diffs[0].Slot != 1 {
		t.Fatalf("expected a single diff at the pseudo output, got %+v", eff.Diffs)
	}
	ref := RefFaultOutputs(view, f, vec)
	if ref.Get(0) != 0 || ref.Get(1) != 1 {
		t.Fatalf("reference disagrees: %s", ref.String(2))
	}
}

// TestPartialBatchMasking checks that patterns beyond Batch.Count never
// contribute detections.
func TestPartialBatchMasking(t *testing.T) {
	c := gen.C17()
	view := netlist.NewScanView(c)
	s := New(view)
	set := pattern.NewSet(view.NumInputs())
	set.Add(pattern.Vector{logic.One, logic.One, logic.Zero, logic.Zero, logic.Zero})
	b := set.Pack()[0]
	if b.Count != 1 || b.Mask() != 1 {
		t.Fatalf("batch count/mask = %d/%x", b.Count, b.Mask())
	}
	s.Apply(&b)
	for _, f := range fault.Universe(c) {
		eff := s.Propagate(f)
		if eff.Detect&^uint64(1) != 0 {
			t.Fatalf("fault %s detected on masked patterns: %x", f.Name(c), eff.Detect)
		}
	}
}

// TestEvalTernaryXPropagation spot-checks pessimistic X handling.
func TestEvalTernaryXPropagation(t *testing.T) {
	b := netlist.NewBuilder("x")
	a := b.Input("a")
	bb := b.Input("b")
	and := b.Gate(netlist.And, "and", a, bb)
	or := b.Gate(netlist.Or, "or", a, bb)
	xor := b.Gate(netlist.Xor, "xor", a, bb)
	b.Output(and)
	b.Output(or)
	b.Output(xor)
	c, _ := b.Build()
	view := netlist.NewScanView(c)
	vec := pattern.Vector{logic.Zero, logic.X}
	vals := EvalTernary(view, vec)
	if vals[and] != logic.Zero {
		t.Errorf("AND(0,x) = %v, want 0", vals[and])
	}
	if vals[or] != logic.X {
		t.Errorf("OR(0,x) = %v, want x", vals[or])
	}
	if vals[xor] != logic.X {
		t.Errorf("XOR(0,x) = %v, want x", vals[xor])
	}
	vec = pattern.Vector{logic.One, logic.X}
	vals = EvalTernary(view, vec)
	if vals[or] != logic.One {
		t.Errorf("OR(1,x) = %v, want 1", vals[or])
	}
	if vals[and] != logic.X {
		t.Errorf("AND(1,x) = %v, want x", vals[and])
	}
}

// TestForkMatchesOriginal: a fork must reproduce the original's effects for
// every fault of the applied batch, and propagating on the fork must not
// disturb the original's state.
func TestForkMatchesOriginal(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	c := gen.Profiles["s27"].MustGenerate(13)
	view := netlist.NewScanView(c)
	col := fault.Collapse(c)
	s := New(view)
	set := pattern.NewSet(view.NumInputs())
	for i := 0; i < 64; i++ {
		set.Add(pattern.Random(r, view.NumInputs()))
	}
	b := set.Pack()[0]
	s.Apply(&b)
	fork := s.Fork()
	if fork.Mask() != s.Mask() {
		t.Fatalf("fork mask %x != %x", fork.Mask(), s.Mask())
	}
	for _, f := range col.Faults {
		// Interleave: fork first, then original — cross-contamination in
		// either direction would show as a mismatch.
		got := fork.Propagate(f)
		want := s.Propagate(f)
		if got.Detect != want.Detect || len(got.Diffs) != len(want.Diffs) {
			t.Fatalf("fault %s: fork effect %+v, original %+v", f.Name(c), got, want)
		}
		for d := range want.Diffs {
			if got.Diffs[d] != want.Diffs[d] {
				t.Fatalf("fault %s diff %d: fork %+v, original %+v", f.Name(c), d, got.Diffs[d], want.Diffs[d])
			}
		}
	}
}
