package sim

import (
	"math/rand"
	"testing"
)

// TestDetectBitmapsTranspose checks the word-parallel transpose against
// the naive per-(pattern, fault) derivation, including the partial-batch
// masking of pattern bits past count.
func TestDetectBitmapsTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		nf := 1 + r.Intn(150) // crosses the 64-fault word boundary
		count := 1 + r.Intn(64)
		effects := make([]Effect, nf)
		for i := range effects {
			// Set bits beyond count too: the transpose must mask them out.
			effects[i].Detect = r.Uint64()
		}
		out := DetectBitmaps(effects, count)
		if len(out) != count {
			t.Fatalf("trial %d: %d pattern rows, want %d", trial, len(out), count)
		}
		words := (nf + 63) / 64
		for p := 0; p < count; p++ {
			if len(out[p]) != words {
				t.Fatalf("trial %d pattern %d: %d words, want %d", trial, p, len(out[p]), words)
			}
			for i := 0; i < nf; i++ {
				got := out[p][i>>6]>>(uint(i)&63)&1 == 1
				want := effects[i].Detect>>uint(p)&1 == 1
				if got != want {
					t.Fatalf("trial %d pattern %d fault %d: bit %v, want %v", trial, p, i, got, want)
				}
			}
			// No bits may be set past the fault count.
			if nf%64 != 0 {
				if extra := out[p][words-1] >> uint(nf%64); extra != 0 {
					t.Fatalf("trial %d pattern %d: stray bits past fault count: %#x", trial, p, extra)
				}
			}
		}
	}
}
