package sim

import (
	"math/rand"
	"testing"

	"sddict/internal/gen"
	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
)

// buildCounterBit returns a 1-bit toggle register: ff' = ff XOR en,
// out = ff.
func buildCounterBit(t *testing.T) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder("toggle")
	en := b.Input("en")
	ff := b.Gate(netlist.DFF, "ff") // fanin patched
	x := b.Gate(netlist.Xor, "x", ff, en)
	b.SetFanin(ff, x)
	out := b.Gate(netlist.Buf, "out", ff)
	b.Output(out)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSequentialToggle(t *testing.T) {
	c := buildCounterBit(t)
	s := NewSequential(c)

	// Unknown state propagates to the output.
	out, err := s.Step(pattern.Vector{logic.Zero})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != logic.X {
		t.Fatalf("cycle 0 output %v, want x (uninitialized state)", out[0])
	}

	// Force a known state and toggle.
	if err := s.SetState([]logic.Value{logic.Zero}); err != nil {
		t.Fatal(err)
	}
	seq := []pattern.Vector{
		{logic.One},  // out samples 0, state -> 1
		{logic.Zero}, // out 1, state stays 1
		{logic.One},  // out 1, state -> 0
		{logic.Zero}, // out 0
	}
	trace, err := s.Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	want := []logic.Value{logic.Zero, logic.One, logic.One, logic.Zero}
	for i, w := range want {
		if trace[i][0] != w {
			t.Errorf("cycle %d: out %v, want %v", i, trace[i][0], w)
		}
	}
	if s.Cycle() != 5 {
		t.Errorf("Cycle = %d, want 5", s.Cycle())
	}
}

// TestSequentialMatchesScanUnrolling: one Step from a fully known state
// must equal combinational scan-view evaluation with that state as pseudo
// inputs, and the captured next state must equal the pseudo outputs.
func TestSequentialMatchesScanUnrolling(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	c := gen.Profiles["s298"].MustGenerate(6)
	view := netlist.NewScanView(c)
	s := NewSequential(c)
	for trial := 0; trial < 25; trial++ {
		pi := pattern.Random(r, len(c.PIs))
		state := pattern.Random(r, len(c.DFFs))
		if err := s.SetState(state); err != nil {
			t.Fatal(err)
		}
		out, err := s.Step(pi)
		if err != nil {
			t.Fatal(err)
		}
		// Scan-view evaluation of the same (pi, state).
		vec := make(pattern.Vector, 0, view.NumInputs())
		vec = append(vec, pi...)
		vec = append(vec, state...)
		vals := EvalTernary(view, vec)
		for i, po := range c.POs {
			if out[i] != vals[po] {
				t.Fatalf("trial %d: PO %d sequential %v, scan %v", trial, i, out[i], vals[po])
			}
		}
		next := s.State()
		for i, ff := range c.DFFs {
			d := c.Gates[ff].Fanin[0]
			if next[i] != vals[d] {
				t.Fatalf("trial %d: FF %d next state %v, scan D line %v", trial, i, next[i], vals[d])
			}
		}
	}
}

func TestSequentialErrors(t *testing.T) {
	c := buildCounterBit(t)
	s := NewSequential(c)
	if _, err := s.Step(pattern.Vector{logic.One, logic.One}); err == nil {
		t.Error("Step accepted wrong vector width")
	}
	if err := s.SetState([]logic.Value{logic.One, logic.One}); err == nil {
		t.Error("SetState accepted wrong width")
	}
}

func TestSequentialReset(t *testing.T) {
	c := buildCounterBit(t)
	s := NewSequential(c)
	s.SetState([]logic.Value{logic.One})
	s.Step(pattern.Vector{logic.One})
	s.Reset()
	if s.Cycle() != 0 {
		t.Error("Reset did not clear the cycle counter")
	}
	for _, v := range s.State() {
		if v != logic.X {
			t.Error("Reset did not clear the state to X")
		}
	}
}
