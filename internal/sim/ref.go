package sim

import (
	"sddict/internal/fault"
	"sddict/internal/logic"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
)

// EvalTernary evaluates the full-scan view for a single ternary input
// vector and returns the value of every gate. X values propagate
// pessimistically through the standard ternary gate functions. This scalar
// evaluator is the reference the bit-parallel simulator is validated
// against, and the good-value engine used by the test generator.
func EvalTernary(view *netlist.ScanView, vec pattern.Vector) []logic.Value {
	c := view.C
	vals := make([]logic.Value, len(c.Gates))
	for i, g := range view.Inputs {
		vals[g] = vec[i]
	}
	for _, g := range c.Order() {
		if c.IsSource(g) {
			switch c.Gates[g].Type {
			case netlist.Const0:
				vals[g] = logic.Zero
			case netlist.Const1:
				vals[g] = logic.One
			}
			continue
		}
		vals[g] = EvalGateTernary(c.Gates[g].Type, c.Gates[g].Fanin, func(_ int, f int32) logic.Value {
			return vals[f]
		})
	}
	return vals
}

// EvalGateTernary evaluates one gate in ternary logic. The reader receives
// both the pin position and the driving gate, so callers can override a
// single branch.
func EvalGateTernary(t netlist.GateType, fanin []int32, val func(pin int, driver int32) logic.Value) logic.Value {
	switch t {
	case netlist.Const0:
		return logic.Zero
	case netlist.Const1:
		return logic.One
	case netlist.Buf:
		return val(0, fanin[0])
	case netlist.Not:
		return val(0, fanin[0]).Not()
	case netlist.And, netlist.Nand:
		out := logic.One
		for pin, f := range fanin {
			switch val(pin, f) {
			case logic.Zero:
				out = logic.Zero
			case logic.X:
				if out == logic.One {
					out = logic.X
				}
			}
		}
		if t == netlist.Nand {
			out = out.Not()
		}
		return out
	case netlist.Or, netlist.Nor:
		out := logic.Zero
		for pin, f := range fanin {
			switch val(pin, f) {
			case logic.One:
				out = logic.One
			case logic.X:
				if out == logic.Zero {
					out = logic.X
				}
			}
		}
		if t == netlist.Nor {
			out = out.Not()
		}
		return out
	case netlist.Xor, netlist.Xnor:
		out := logic.Zero
		for pin, f := range fanin {
			v := val(pin, f)
			if v == logic.X {
				return logic.X
			}
			if v == logic.One {
				out = out.Not()
			}
		}
		if t == netlist.Xnor {
			out = out.Not()
		}
		return out
	}
	panic("sim: ternary eval of source gate")
}

// RefFaultOutputs computes, for a single fully specified test vector, the
// output response of the circuit under fault f by naive scalar evaluation.
// It is the correctness reference for Simulator.Propagate.
func RefFaultOutputs(view *netlist.ScanView, f fault.Fault, vec pattern.Vector) logic.BitVec {
	c := view.C
	forced := logic.FromBit(uint64(f.Stuck))
	vals := make([]logic.Value, len(c.Gates))
	for i, g := range view.Inputs {
		vals[g] = vec[i]
	}
	for _, g := range c.Order() {
		switch {
		case c.IsSource(g):
			switch c.Gates[g].Type {
			case netlist.Const0:
				vals[g] = logic.Zero
			case netlist.Const1:
				vals[g] = logic.One
			}
		default:
			gate := &c.Gates[g]
			vals[g] = EvalGateTernary(gate.Type, gate.Fanin, func(pin int, d int32) logic.Value {
				if !f.IsStem() && f.Gate == g && int32(pin) == f.Pin {
					return forced
				}
				return vals[d]
			})
		}
		if f.IsStem() && f.Gate == g {
			vals[g] = forced
		}
	}
	out := logic.NewBitVec(view.NumOutputs())
	for slot, g := range view.Outputs {
		v := vals[g]
		// A branch fault on a flip-flop D pin is observed only at that
		// flip-flop's pseudo output.
		if !f.IsStem() && c.Gates[f.Gate].Type == netlist.DFF &&
			slot >= len(c.POs) && c.DFFs[slot-len(c.POs)] == f.Gate {
			v = forced
		}
		out.Set(slot, v.Bit())
	}
	return out
}
