// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis core: an Analyzer runs over one
// type-checked package at a time and reports position-anchored
// diagnostics. The full x/tools module is deliberately not vendored — the
// four sddlint analyzers need only single-package syntax + type
// information, which the standard library's go/parser and go/types
// provide. The API mirrors x/tools closely enough that the analyzers
// could be ported to real analysis.Analyzer values mechanically if the
// dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker. Run is called once per
// type-checked package, in import-dependency order, so facts exported
// while analyzing a package are visible when its importers are
// analyzed.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and on the
	// command line (e.g. "determinism").
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports violations through pass.Report/Reportf and may
	// export facts for downstream packages.
	Run func(*Pass) error
	// FactTypes lists the fact types Run exports, if any — documentary
	// (the in-memory store needs no registration), but kept so the
	// analyzer catalog is self-describing.
	FactTypes []Fact
}

// Diagnostic is one reported violation. SuggestedFixes, when present,
// carry machine-applicable edits (`sddlint -fix`).
type Diagnostic struct {
	Pos            token.Pos
	Analyzer       string
	Message        string
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one self-contained, machine-applicable resolution of
// a diagnostic: applying every edit resolves the finding.
type SuggestedFix struct {
	// Message describes the fix ("wrap with %w").
	Message string
	// Edits are non-overlapping replacements within a single file.
	Edits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText. End may
// equal Pos for a pure insertion.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// Pass carries one package's syntax and type information through an
// Analyzer.Run invocation, plus the run-wide fact store the analyzer
// exports to and imports from.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report  func(Diagnostic)
	facts   *FactStore
	parents map[ast.Node]ast.Node
}

// NewPass assembles a Pass for one package. report receives each
// diagnostic as it is emitted. facts may be nil, in which case the pass
// gets a private store (facts exported in it are invisible to other
// passes — fine for single-package tests).
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *FactStore, report func(Diagnostic)) *Pass {
	if facts == nil {
		facts = NewFactStore()
	}
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		report:    report,
		facts:     facts,
		parents:   buildParents(files),
	}
}

// Reportf emits a diagnostic anchored at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Report emits d, filling in the analyzer name.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// ExportObjectFact attaches fact to obj for this pass's analyzer;
// passes of the same analyzer over importing packages can retrieve it
// with ImportObjectFact.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.facts.ExportObjectFact(p.Analyzer.Name, obj, fact)
}

// ImportObjectFact copies the fact of fact's concrete type attached to
// obj into fact, reporting whether one exists.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.facts.ImportObjectFact(p.Analyzer.Name, obj, fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.ExportPackageFact(p.Analyzer.Name, p.Pkg, fact)
}

// ImportPackageFact copies pkg's fact of fact's concrete type into
// fact, reporting whether one exists.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	return p.facts.ImportPackageFact(p.Analyzer.Name, pkg, fact)
}

// Parent returns the syntactic parent of n within the pass's files, or
// nil for roots and unknown nodes.
func (p *Pass) Parent(n ast.Node) ast.Node { return p.parents[n] }

// EnclosingFunc returns the function declaration lexically containing n,
// or nil when n is at file scope.
func (p *Pass) EnclosingFunc(n ast.Node) *ast.FuncDecl {
	for cur := p.parents[n]; cur != nil; cur = p.parents[cur] {
		if fd, ok := cur.(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

func buildParents(files []*ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return parents
}

// CalleeFunc resolves the statically-known function or method a call
// expression invokes, or nil for indirect calls through function values,
// conversions, and built-ins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (methods never match).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// CalleeName returns the bare name of the called function — "BuildCtx"
// for both BuildCtx(...) and core.BuildCtx(...) — or "" for calls with no
// identifier callee.
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// SortDiagnostics orders diagnostics by file position for stable output.
func SortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return ds[i].Message < ds[j].Message
	})
}
