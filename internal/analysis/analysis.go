// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis core: an Analyzer runs over one
// type-checked package at a time and reports position-anchored
// diagnostics. The full x/tools module is deliberately not vendored — the
// four sddlint analyzers need only single-package syntax + type
// information, which the standard library's go/parser and go/types
// provide. The API mirrors x/tools closely enough that the analyzers
// could be ported to real analysis.Analyzer values mechanically if the
// dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker. Run is called once per
// type-checked target package.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and on the
	// command line (e.g. "determinism").
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports violations through pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one package's syntax and type information through an
// Analyzer.Run invocation.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report  func(Diagnostic)
	parents map[ast.Node]ast.Node
}

// NewPass assembles a Pass for one package. report receives each
// diagnostic as it is emitted.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		report:    report,
		parents:   buildParents(files),
	}
}

// Reportf emits a diagnostic anchored at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Parent returns the syntactic parent of n within the pass's files, or
// nil for roots and unknown nodes.
func (p *Pass) Parent(n ast.Node) ast.Node { return p.parents[n] }

// EnclosingFunc returns the function declaration lexically containing n,
// or nil when n is at file scope.
func (p *Pass) EnclosingFunc(n ast.Node) *ast.FuncDecl {
	for cur := p.parents[n]; cur != nil; cur = p.parents[cur] {
		if fd, ok := cur.(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

func buildParents(files []*ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return parents
}

// CalleeFunc resolves the statically-known function or method a call
// expression invokes, or nil for indirect calls through function values,
// conversions, and built-ins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (methods never match).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// CalleeName returns the bare name of the called function — "BuildCtx"
// for both BuildCtx(...) and core.BuildCtx(...) — or "" for calls with no
// identifier callee.
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// SortDiagnostics orders diagnostics by file position for stable output.
func SortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return ds[i].Message < ds[j].Message
	})
}
