// Package determinism enforces the replayability invariant behind
// checkpoint/resume (DESIGN.md §7): dictionary construction must be a
// pure function of (matrix, Options.Seed), so a resumed run converges to
// the uninterrupted result. Three nondeterminism sources are banned in
// the search packages:
//
//   - the process-global math/rand stream (un-replayable across resume
//     boundaries; every RNG must be a locally seeded *rand.Rand),
//   - wall-clock time escaping into results (time.Now may only feed
//     duration statistics via time.Since or Time.Sub),
//   - map-iteration order leaking into result slices (a range over a map
//     that appends to an outer slice must be followed by a sort).
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sddict/internal/analysis"
)

// Analyzer is the determinism invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid global math/rand, non-duration time.Now, and unsorted map-order results in the search packages",
	Run:  run,
}

// scope lists the packages whose computations feed checkpointed or
// reported results. Packages outside the module (analysistest fixtures)
// are always in scope.
var scope = map[string]bool{
	"sddict/internal/core":     true,
	"sddict/internal/atpg":     true,
	"sddict/internal/sim":      true,
	"sddict/internal/diagnose": true,
}

func inScope(path string) bool {
	return scope[path] || !strings.HasPrefix(path, "sddict")
}

// randConstructors are the approved ways to touch math/rand: building a
// locally seeded generator. Everything else package-level (Intn, Perm,
// Shuffle, Seed, ...) draws from or mutates the global stream.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkGlobalRand(pass, n)
				checkTimeNow(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func isRandPkg(path string) bool { return path == "math/rand" || path == "math/rand/v2" }

func checkGlobalRand(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods on *rand.Rand are the approved pattern
	}
	if randConstructors[fn.Name()] {
		return
	}
	pass.Reportf(call.Pos(), "global math/rand.%s draws from the process-wide stream; use a seeded *rand.Rand so restarts replay deterministically", fn.Name())
}

// checkTimeNow flags time.Now() calls whose result can reach anything
// other than a duration computation.
func checkTimeNow(pass *analysis.Pass, call *ast.CallExpr) {
	if !analysis.IsPkgFunc(pass.TypesInfo, call, "time", "Now") {
		return
	}
	parent := pass.Parent(call)
	// time.Now().Sub(x) — a pure duration.
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sub" {
		if c, ok := pass.Parent(sel).(*ast.CallExpr); ok && isDurationCall(pass.TypesInfo, c) {
			return
		}
	}
	// time.Since(time.Now()) or x.Sub(time.Now()) — degenerate but harmless.
	if c, ok := parent.(*ast.CallExpr); ok && isDurationCall(pass.TypesInfo, c) {
		return
	}
	// start := time.Now() — every later use of start must be a duration
	// computation.
	if obj := assignedObj(pass, call); obj != nil {
		if bad := firstNonDurationUse(pass, obj); bad == nil {
			return
		} else {
			pass.Reportf(call.Pos(), "time.Now result %s escapes a duration computation at %s; wall-clock values may only feed duration stats (time.Since / Time.Sub)",
				obj.Name(), pass.Fset.Position(bad.Pos()))
			return
		}
	}
	pass.Reportf(call.Pos(), "time.Now result feeds a non-duration use; wall-clock values may only feed duration stats (time.Since / Time.Sub)")
}

// isDurationCall reports whether call is time.Since(...) or the
// time.Time.Sub method.
func isDurationCall(info *types.Info, call *ast.CallExpr) bool {
	if analysis.IsPkgFunc(info, call, "time", "Since") {
		return true
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Name() != "Sub" || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// assignedObj returns the variable a `v := time.Now()` / `var v =
// time.Now()` / `v = time.Now()` form binds, or nil when the call is not
// the right-hand side of a simple one-to-one assignment.
func assignedObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch parent := pass.Parent(call).(type) {
	case *ast.AssignStmt:
		if len(parent.Lhs) != len(parent.Rhs) {
			return nil
		}
		for i, rhs := range parent.Rhs {
			if rhs != ast.Expr(call) {
				continue
			}
			id, ok := parent.Lhs[i].(*ast.Ident)
			if !ok {
				return nil
			}
			if parent.Tok == token.DEFINE {
				return pass.TypesInfo.Defs[id]
			}
			return pass.TypesInfo.Uses[id]
		}
	case *ast.ValueSpec:
		if len(parent.Names) != len(parent.Values) {
			return nil
		}
		for i, v := range parent.Values {
			if v == ast.Expr(call) {
				return pass.TypesInfo.Defs[parent.Names[i]]
			}
		}
	}
	return nil
}

// firstNonDurationUse scans the function (or file, for package-level
// variables) holding obj's definition and returns the first use of obj
// that is not an argument or receiver of a duration computation.
func firstNonDurationUse(pass *analysis.Pass, obj types.Object) ast.Node {
	var root ast.Node
	for _, f := range pass.Files {
		if f.Pos() <= obj.Pos() && obj.Pos() <= f.End() {
			root = f
		}
	}
	if root == nil {
		return nil
	}
	var bad ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		if isAssignLHS(pass, id) {
			return true // re-binding, not a read
		}
		for cur := pass.Parent(id); cur != nil; cur = pass.Parent(cur) {
			if c, ok := cur.(*ast.CallExpr); ok {
				if isDurationCall(pass.TypesInfo, c) {
					return true
				}
				break // some other call consumed the timestamp
			}
		}
		bad = id
		return false
	})
	return bad
}

func isAssignLHS(pass *analysis.Pass, id *ast.Ident) bool {
	as, ok := pass.Parent(id).(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if lhs == ast.Expr(id) {
			return true
		}
	}
	return false
}

// checkMapRange flags `for ... := range m { s = append(s, ...) }` where m
// is a map and s outlives the loop, unless a sort/slices call over s
// follows the loop in the same block.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	t := pass.TypesInfo.Types[rs.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	appended := appendTargets(pass, rs)
	if len(appended) == 0 {
		return
	}
	sorted := sortedAfter(pass, rs)
	for _, obj := range appended {
		if !sorted[obj] {
			pass.Reportf(rs.Pos(), "%s is appended in map-iteration order without a following sort; map order is random and breaks deterministic replay", obj.Name())
		}
	}
}

// appendTargets collects variables declared outside rs that the loop body
// appends to.
func appendTargets(pass *analysis.Pass, rs *ast.RangeStmt) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass.TypesInfo, call) {
				continue
			}
			obj := lhsObject(pass, as.Lhs[i])
			if obj == nil || seen[obj] {
				continue
			}
			// Variables born inside the loop cannot leak iteration
			// order past it.
			if rs.Pos() <= obj.Pos() && obj.Pos() <= rs.End() {
				continue
			}
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func lhsObject(pass *analysis.Pass, lhs ast.Expr) types.Object {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(lhs)
	case *ast.SelectorExpr:
		return pass.TypesInfo.ObjectOf(lhs.Sel)
	}
	return nil
}

// sortedAfter reports which objects appear under a sort or slices call in
// the statements following rs within its enclosing block.
func sortedAfter(pass *analysis.Pass, rs *ast.RangeStmt) map[types.Object]bool {
	sorted := map[types.Object]bool{}
	block, ok := pass.Parent(rs).(*ast.BlockStmt)
	if !ok {
		return sorted
	}
	past := false
	for _, stmt := range block.List {
		if stmt == ast.Stmt(rs) {
			past = true
			continue
		}
		if !past {
			continue
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if id, ok := a.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[id]; obj != nil {
							sorted[obj] = true
						}
					}
					return true
				})
			}
			return true
		})
	}
	return sorted
}
