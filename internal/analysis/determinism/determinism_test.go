package determinism_test

import (
	"testing"

	"sddict/internal/analysis/analysistest"
	"sddict/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer, "a")
}
