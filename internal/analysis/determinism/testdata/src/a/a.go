// Fixture for the determinism analyzer: global RNG, wall-clock escapes,
// and map-order result assembly.
package a

import (
	"math/rand"
	"sort"
	"time"
)

func work() {}

// --- global math/rand -------------------------------------------------

func globalRand() int {
	return rand.Intn(10) // want `global math/rand.Intn`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand.Shuffle`
}

func seededRand(seed int64) []int {
	r := rand.New(rand.NewSource(seed)) // ok: constructing a local generator
	out := r.Perm(10)                   // ok: method on the seeded generator
	if r.Intn(2) == 0 {                 // ok: method, not the global stream
		out = out[:5]
	}
	return out
}

// --- wall clock -------------------------------------------------------

func durationOnly() time.Duration {
	start := time.Now() // ok: only ever feeds time.Since
	work()
	return time.Since(start)
}

func subDuration() time.Duration {
	start := time.Now() // ok: consumed by Time.Sub
	work()
	end := time.Now() // ok: receiver of Sub
	return end.Sub(start)
}

func inlineSub(start time.Time) time.Duration {
	return time.Now().Sub(start) // ok: immediate duration
}

func wallClockEscape() time.Time {
	ts := time.Now() // want `escapes a duration computation`
	return ts
}

func stampResult() int64 {
	return time.Now().UnixNano() // want `non-duration use`
}

func leakToCall() {
	report(time.Now()) // want `non-duration use`
}

func report(t time.Time) { _ = t }

// --- map iteration order ---------------------------------------------

func unsortedAssembly(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `out is appended in map-iteration order`
		out = append(out, v)
	}
	return out
}

func sortedAssembly(m map[int]string) []string {
	var out []string
	for _, v := range m { // ok: sorted before use
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // ok: keys are sorted below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func loopLocalSlice(m map[int][]int) int {
	total := 0
	for _, vs := range m { // ok: appended slice never leaves the iteration
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

func sliceRange(xs []string) []string {
	var out []string
	for _, v := range xs { // ok: ranging over a slice is ordered
		out = append(out, v)
	}
	return out
}
