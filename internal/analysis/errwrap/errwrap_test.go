package errwrap_test

import (
	"testing"

	"sddict/internal/analysis/analysistest"
	"sddict/internal/analysis/errwrap"
)

func TestErrWrap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errwrap.Analyzer, "a")
}

func TestSuggestedFixes(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, analysistest.TestData(), errwrap.Analyzer, "fix")
}
