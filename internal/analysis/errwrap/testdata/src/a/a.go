// Fixture for the errwrap analyzer: fmt.Errorf must wrap error arguments
// with %w.
package a

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

type codeError struct{ code int }

func (e *codeError) Error() string { return "code" }

func flatten(err error) error {
	return fmt.Errorf("loading: %v", err) // want `formatted with %v loses the unwrap chain`
}

func flattenString(err error) error {
	return fmt.Errorf("loading: %s", err) // want `formatted with %s loses the unwrap chain`
}

func concrete(e *codeError) error {
	return fmt.Errorf("op failed: %v", e) // want `formatted with %v loses the unwrap chain`
}

func secondArg(path string, err error) error {
	return fmt.Errorf("%s at line %d: %v", path, 7, err) // want `formatted with %v loses the unwrap chain`
}

func wrapped(err error) error {
	return fmt.Errorf("loading: %w", err) // ok: chain preserved
}

func sentinel() error {
	return fmt.Errorf("state: %w", errBase) // ok
}

func notAnError(name string) error {
	return fmt.Errorf("bad profile %q, have %v options", name, 3) // ok: no error args
}

func explicitFlatten(err error) error {
	return fmt.Errorf("failed: %v", err.Error()) // ok: already a string; flattening is explicit
}

func literalPercent(err error) error {
	return fmt.Errorf("rate 100%%: %w", err) // ok: %% consumes no argument
}

func starWidth(err error) error {
	return fmt.Errorf("%*d: %w", 4, 7, err) // ok: * consumes an argument slot
}
