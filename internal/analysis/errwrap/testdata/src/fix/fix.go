// Fixture: the %v-to-%w rewrite, checked against fix.go.golden.
package fix

import "fmt"

func open(path string, err error) error {
	return fmt.Errorf("open %s: %v", path, err) // want "error argument formatted with %v loses the unwrap chain"
}

func decode(line int, err error) error {
	return fmt.Errorf("line %d: %s", line, err) // want "error argument formatted with %s loses the unwrap chain"
}
