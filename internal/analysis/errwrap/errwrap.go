// Package errwrap enforces error-chain preservation: a fmt.Errorf whose
// argument is an error must wrap it with %w, not flatten it with %v/%s/%q.
// Flattening breaks errors.Is/As — the CLI's exit-code mapping and the
// pipeline's context.Canceled detection both walk the unwrap chain.
package errwrap

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"sddict/internal/analysis"
)

// Analyzer is the %w-wrapping invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf with an error argument must use %w so the error chain stays inspectable",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkErrorf(pass, call)
			return true
		})
	}
	return nil
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if !analysis.IsPkgFunc(pass.TypesInfo, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := constantString(pass.TypesInfo, call.Args[0])
	if !ok || strings.Contains(format, "%[") {
		return // dynamic or explicitly-indexed formats are out of reach
	}
	verbs := parseVerbs(format)
	args := call.Args[1:]
	for i, v := range verbs {
		if i >= len(args) {
			break // malformed call; go vet reports the arity mismatch
		}
		if v != 'v' && v != 's' && v != 'q' {
			continue
		}
		if t := pass.TypesInfo.Types[args[i]].Type; t != nil && implementsError(t) {
			d := analysis.Diagnostic{
				Pos:     args[i].Pos(),
				Message: fmt.Sprintf("error argument formatted with %%%c loses the unwrap chain; use %%w", v),
			}
			if fix := verbFix(call.Args[0], format, i); fix != nil {
				d.SuggestedFixes = []analysis.SuggestedFix{*fix}
			}
			pass.Report(d)
		}
	}
}

// verbFix rewrites the format literal with the verb for argument
// argIndex replaced by %w. Only direct string literals are rewritten —
// a concatenated or named format has no single source range to edit.
func verbFix(formatExpr ast.Expr, format string, argIndex int) *analysis.SuggestedFix {
	lit, ok := ast.Unparen(formatExpr).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil
	}
	rewritten, ok := replaceVerb(format, argIndex)
	if !ok {
		return nil
	}
	return &analysis.SuggestedFix{
		Message: "wrap with %w",
		Edits: []analysis.TextEdit{{
			Pos:     lit.Pos(),
			End:     lit.End(),
			NewText: strconv.Quote(rewritten),
		}},
	}
}

// replaceVerb substitutes 'w' for the verb consuming argument argIndex,
// mirroring parseVerbs' scan so both agree on which verb that is.
func replaceVerb(format string, argIndex int) (string, bool) {
	runes := []rune(format)
	arg := 0
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		for i < len(runes) {
			c := runes[i]
			if c == '*' {
				arg++
				i++
				continue
			}
			if strings.ContainsRune("+-# 0123456789.", c) {
				i++
				continue
			}
			break
		}
		if i >= len(runes) || runes[i] == '%' {
			continue
		}
		if arg == argIndex {
			runes[i] = 'w'
			return string(runes), true
		}
		arg++
	}
	return "", false
}

// constantString evaluates string literals and literal concatenations.
func constantString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// parseVerbs returns the verb characters of format in argument order;
// `*` width/precision markers consume an argument slot and are returned
// as '*'.
func parseVerbs(format string) []rune {
	var verbs []rune
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		// flags, width, precision
		for i < len(runes) {
			c := runes[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# 0123456789.", c) {
				i++
				continue
			}
			break
		}
		if i >= len(runes) || runes[i] == '%' {
			continue
		}
		verbs = append(verbs, runes[i])
	}
	return verbs
}

func implementsError(t types.Type) bool {
	errType, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errType)
}
