// Package atomicwrite guards the crash-safety invariant of on-disk
// artifacts: checkpoints, compiled dictionaries, and report files must
// never be observable half-written, because a truncated checkpoint poisons
// resume and a truncated dictionary poisons every diagnosis loaded from
// it. All artifact writes go through the single temp-file-plus-rename
// helper in internal/core/checkpoint.go; direct os.WriteFile / os.Create
// calls anywhere else in the library or command packages are flagged.
package atomicwrite

import (
	"go/ast"
	"path/filepath"
	"strings"

	"sddict/internal/analysis"
)

// Analyzer is the atomic-artifact-write invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc:  "forbid direct os.WriteFile/os.Create outside the atomic-write helper in internal/core/checkpoint.go",
	Run:  run,
}

// helperFile is the one file allowed to open destination paths directly:
// it implements the temp-file + rename primitive everything else uses.
const helperFile = "checkpoint.go"

// inScope covers the library and command packages. Examples are excluded
// (they are documentation, not artifact producers); analysistest fixture
// packages are always in scope.
func inScope(path string) bool {
	return strings.HasPrefix(path, "sddict/internal/") ||
		strings.HasPrefix(path, "sddict/cmd/") ||
		!strings.HasPrefix(path, "sddict")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if filepath.Base(pass.Fset.Position(file.Pos()).Filename) == helperFile {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range [...]string{"WriteFile", "Create"} {
				if analysis.IsPkgFunc(pass.TypesInfo, call, "os", name) {
					pass.Reportf(call.Pos(), "direct os.%s leaves a truncated artifact on crash; write through core.AtomicWriteFile (temp file + rename)", name)
				}
			}
			return true
		})
	}
	return nil
}
