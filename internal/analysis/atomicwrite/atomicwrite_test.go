package atomicwrite_test

import (
	"testing"

	"sddict/internal/analysis/analysistest"
	"sddict/internal/analysis/atomicwrite"
)

func TestAtomicWrite(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicwrite.Analyzer, "a")
}
