// Fixture for the atomicwrite analyzer: direct artifact writes outside
// the designated helper file.
package a

import "os"

func saveReport(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `direct os.WriteFile`
}

func openArtifact(path string) (*os.File, error) {
	return os.Create(path) // want `direct os.Create`
}

func readBack(path string) ([]byte, error) {
	return os.ReadFile(path) // ok: reads are unrestricted
}

func scratch(dir string) (*os.File, error) {
	return os.CreateTemp(dir, "scratch*") // ok: temp files are the atomic staging step
}
