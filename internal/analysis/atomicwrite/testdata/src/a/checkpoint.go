package a

import "os"

// atomicWriteFile mirrors internal/core/checkpoint.go: this file is the
// designated home of the temp-file-plus-rename primitive, so direct
// creation here is allowed.
func atomicWriteFile(path string, data []byte) error {
	f, err := os.Create(path) // ok: inside the helper file
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
