package analysis_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sddict/internal/analysis"
)

// writeFixture puts src on disk (ApplyFixes reads the file back) and
// parses it into fset.
func writeFixture(t *testing.T, fset *token.FileSet, src string) (string, *token.File) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fix.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return path, fset.File(f.Pos())
}

func TestApplyFixes(t *testing.T) {
	const src = `package p

func f() string {
	return "old"
}
`
	fset := token.NewFileSet()
	path, tf := writeFixture(t, fset, src)

	at := func(offset int) token.Pos { return tf.Pos(offset) }
	oldPos := strings.Index(src, `"old"`)

	diags := []analysis.Diagnostic{{
		Pos:      at(oldPos),
		Analyzer: "demo",
		Message:  "use new",
		SuggestedFixes: []analysis.SuggestedFix{{
			Message: "replace",
			Edits: []analysis.TextEdit{{
				Pos:     at(oldPos),
				End:     at(oldPos + len(`"old"`)),
				NewText: `"new"`,
			}},
		}},
	}}

	written := map[string][]byte{}
	results, err := analysis.ApplyFixes(fset, diags, func(p string, data []byte) error {
		written[p] = data
		return nil
	})
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(results) != 1 || results[0].Applied != 1 || results[0].Skipped != 0 {
		t.Fatalf("results = %+v, want one file with one applied edit", results)
	}
	got := string(written[path])
	if !strings.Contains(got, `return "new"`) || strings.Contains(got, "old") {
		t.Errorf("fixed source did not swap the literal:\n%s", got)
	}
}

// Overlapping edits must not corrupt the file: edits apply right to
// left, so the rightmost edit wins and the overlap is counted, not
// applied (the next -fix run re-offers it on the rewritten source).
func TestApplyFixesOverlap(t *testing.T) {
	const src = `package p

var v = 1234
`
	fset := token.NewFileSet()
	path, tf := writeFixture(t, fset, src)
	numPos := strings.Index(src, "1234")
	at := func(offset int) token.Pos { return tf.Pos(offset) }

	mkdiag := func(start, end int, text string) analysis.Diagnostic {
		return analysis.Diagnostic{
			Pos: at(start), Analyzer: "demo", Message: "m",
			SuggestedFixes: []analysis.SuggestedFix{{
				Message: "edit",
				Edits:   []analysis.TextEdit{{Pos: at(start), End: at(end), NewText: text}},
			}},
		}
	}
	diags := []analysis.Diagnostic{
		mkdiag(numPos, numPos+4, "9"),
		mkdiag(numPos+2, numPos+4, "8"), // overlaps the first edit
	}
	written := map[string][]byte{}
	results, err := analysis.ApplyFixes(fset, diags, func(p string, data []byte) error {
		written[p] = data
		return nil
	})
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(results) != 1 || results[0].Applied != 1 || results[0].Skipped != 1 {
		t.Fatalf("results = %+v, want 1 applied + 1 skipped", results)
	}
	if got := string(written[path]); !strings.Contains(got, "var v = 128") {
		t.Errorf("overlap corrupted the file:\n%s", got)
	}
}

// An insertion (End == Pos) at a statement boundary must survive the
// gofmt pass.
func TestApplyFixesInsertion(t *testing.T) {
	const src = `package p

func f() {
	g()
}

func g() {}
`
	fset := token.NewFileSet()
	path, tf := writeFixture(t, fset, src)
	callEnd := strings.Index(src, "g()") + len("g()")
	at := tf.Pos(callEnd)

	diags := []analysis.Diagnostic{{
		Pos: at, Analyzer: "demo", Message: "add call",
		SuggestedFixes: []analysis.SuggestedFix{{
			Message: "append statement",
			Edits:   []analysis.TextEdit{{Pos: at, End: token.NoPos, NewText: "\ng()"}},
		}},
	}}
	written := map[string][]byte{}
	if _, err := analysis.ApplyFixes(fset, diags, func(p string, data []byte) error {
		written[p] = data
		return nil
	}); err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	got := string(written[path])
	if strings.Count(got, "g()") != 3 { // two calls + one declaration
		t.Errorf("insertion missing:\n%s", got)
	}
	if !strings.Contains(got, "\tg()\n\tg()\n") {
		t.Errorf("inserted statement not gofmt-indented:\n%s", got)
	}
}
