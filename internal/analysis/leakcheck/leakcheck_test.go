package leakcheck_test

import (
	"testing"

	"sddict/internal/analysis/analysistest"
	"sddict/internal/analysis/leakcheck"
)

func TestBasic(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), leakcheck.Analyzer, "basic")
}

// TestCrossPackageFacts analyzes the fact producer first, then a
// package whose releases all go through the producer's helpers.
func TestCrossPackageFacts(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), leakcheck.Analyzer, "a", "b")
}

func TestSuggestedFixes(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, analysistest.TestData(), leakcheck.Analyzer, "fix")
}
