// Package leakcheck enforces resource release: a file, listener,
// connection, or context cancel function acquired in a function must be
// released on every path out of it — deferred, closed before each
// return (error paths included), or handed off (returned, stored, or
// passed to a helper that releases it). The serve and dictio layers
// hold dictionaries, listeners and trace files open for the life of a
// long-running process; a handle leaked on an error path is the classic
// slow death under production traffic.
//
// Cross-package reasoning rides the facts layer: when a function
// releases one of its parameters (directly, deferred, or by passing it
// on to another releasing function), leakcheck exports a ClosesFact for
// it, so call sites in importing packages count `registry.evict`-style
// helpers as releases instead of demanding a literal Close.
//
// The path analysis is lexical, not a full CFG: a return statement is
// covered when a release dominates it in the statement tree between
// acquisition and return. The error check immediately following an
// acquisition (`f, err := os.Open(...); if err != nil { return ... }`)
// is exempt — the resource was never acquired on that path.
package leakcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"sddict/internal/analysis"
)

// ClosesFact marks a function that releases (closes, stops, cancels)
// the parameters named by index. Exported while analyzing the
// function's package; imported at call sites anywhere downstream.
type ClosesFact struct {
	Params []int
}

// AFact marks ClosesFact as a fact type.
func (*ClosesFact) AFact() {}

// Analyzer is the resource-release invariant checker.
var Analyzer = &analysis.Analyzer{
	Name:      "leakcheck",
	Doc:       "os/net handles and context cancel funcs must be released on every return path",
	Run:       run,
	FactTypes: []analysis.Fact{(*ClosesFact)(nil)},
}

// acquisition table: package-level functions whose call hands the
// caller a resource it must release.
type acqSpec struct {
	pkg, name string
	result    int    // index of the resource in the result tuple
	release   string // method name, or "" when the resource is itself called (cancel funcs)
	what      string // human name for diagnostics
}

var acquirers = []acqSpec{
	{"os", "Open", 0, "Close", "file"},
	{"os", "OpenFile", 0, "Close", "file"},
	{"os", "Create", 0, "Close", "file"},
	{"os", "CreateTemp", 0, "Close", "file"},
	{"net", "Listen", 0, "Close", "listener"},
	{"net", "ListenTCP", 0, "Close", "listener"},
	{"net", "ListenUDP", 0, "Close", "listener"},
	{"net", "ListenPacket", 0, "Close", "listener"},
	{"net", "Dial", 0, "Close", "connection"},
	{"net", "DialTimeout", 0, "Close", "connection"},
	{"context", "WithCancel", 1, "", "cancel func"},
	{"context", "WithTimeout", 1, "", "cancel func"},
	{"context", "WithDeadline", 1, "", "cancel func"},
}

func matchAcquirer(info *types.Info, call *ast.CallExpr) *acqSpec {
	for i := range acquirers {
		if analysis.IsPkgFunc(info, call, acquirers[i].pkg, acquirers[i].name) {
			return &acquirers[i]
		}
	}
	return nil
}

func run(pass *analysis.Pass) error {
	exportFacts(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFuncUnits(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkFuncUnits analyzes body as one unit and recurses into each
// nested function literal as its own unit — an acquisition belongs to
// the innermost function that performs it.
func checkFuncUnits(pass *analysis.Pass, body *ast.BlockStmt) {
	checkUnit(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != nil {
			checkUnit(pass, fl.Body)
		}
		return true
	})
}

// checkUnit finds the acquisitions performed directly by the statements
// of body (not those of nested function literals) and checks each.
func checkUnit(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate unit
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		spec := matchAcquirer(pass.TypesInfo, call)
		if spec == nil || spec.result >= len(as.Lhs) {
			return true
		}
		id, ok := as.Lhs[spec.result].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			pass.Reportf(id.Pos(), "%s returned by %s.%s is discarded and can never be released",
				spec.what, spec.pkg, spec.name)
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return true
		}
		checkAcquisition(pass, body, as, call, id, obj, spec)
		return true
	})
}

// checkAcquisition decides whether the resource bound to obj by the
// acquisition statement acq is released on every path out of body.
func checkAcquisition(pass *analysis.Pass, body *ast.BlockStmt, acq *ast.AssignStmt, call *ast.CallExpr, id *ast.Ident, obj types.Object, spec *acqSpec) {
	ev := collectEvidence(pass, body, acq, obj, spec)
	switch {
	case ev.escapes || ev.deferred:
		return
	case !ev.released:
		d := analysis.Diagnostic{
			Pos: id.Pos(),
			Message: spec.what + " `" + id.Name + "` from " + spec.pkg + "." + spec.name +
				" is never released; release it with `" + releaseText(id.Name, spec) + "`",
		}
		if fix := deferFix(pass, body, acq, id, obj, spec); fix != nil {
			d.SuggestedFixes = []analysis.SuggestedFix{*fix}
		}
		pass.Report(d)
	default:
		// Released somewhere, but not deferred and not escaping: every
		// return after the acquisition must be dominated by a release.
		w := &walker{pass: pass, obj: obj, spec: spec, acq: acq, id: id}
		w.walk(body.List, false)
		for _, ret := range w.leaks {
			pass.Reportf(ret.Pos(), "return leaks %s `%s` acquired at line %d (no release on this path)",
				spec.what, id.Name, pass.Fset.Position(acq.Pos()).Line)
		}
	}
}

// evidence summarizes how obj is used after acquisition.
type evidence struct {
	deferred bool // a defer releases it: covers every exit
	released bool // some statement releases it
	escapes  bool // ownership leaves the function (returned, stored, captured, sent)
}

func collectEvidence(pass *analysis.Pass, body *ast.BlockStmt, acq *ast.AssignStmt, obj types.Object, spec *acqSpec) evidence {
	var ev evidence
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if releasesObj(pass, n.Call, obj, spec) {
				ev.deferred = true
				ev.released = true
			}
		case *ast.CallExpr:
			if releasesObj(pass, n, obj, spec) {
				ev.released = true
			}
		case *ast.FuncLit:
			if usesObj(pass, n.Body, obj) {
				ev.escapes = true // captured: lifetime beyond this walk
			}
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if exprIsObj(pass, res, obj) || exprContainsObjValue(pass, res, obj) {
					ev.escapes = true
				}
			}
		case *ast.AssignStmt:
			if n == acq || blankOnly(n.Lhs) {
				// `_ = x` silences an unused variable; it does not
				// transfer ownership.
				return true
			}
			for _, rhs := range n.Rhs {
				if exprIsObj(pass, rhs, obj) || exprContainsObjValue(pass, rhs, obj) {
					ev.escapes = true
				}
			}
		case *ast.SendStmt:
			if exprIsObj(pass, n.Value, obj) {
				ev.escapes = true
			}
		}
		return true
	})
	return ev
}

// releasesObj reports whether call releases obj: `obj.Close()`, `obj()`
// for cancel funcs, or a call passing obj to a parameter the callee is
// known (by fact) to release.
func releasesObj(pass *analysis.Pass, call *ast.CallExpr, obj types.Object, spec *acqSpec) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if spec.release == "" && pass.TypesInfo.Uses[fun] == obj {
			return true
		}
	case *ast.SelectorExpr:
		if spec.release != "" && fun.Sel.Name == spec.release {
			if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok && pass.TypesInfo.Uses[x] == obj {
				return true
			}
		}
	}
	// Passed to a releasing helper?
	callee := analysis.CalleeFunc(pass.TypesInfo, call)
	if callee == nil {
		return false
	}
	var fact ClosesFact
	if !pass.ImportObjectFact(callee, &fact) {
		return false
	}
	for _, pi := range fact.Params {
		if pi < len(call.Args) {
			if id, ok := ast.Unparen(call.Args[pi]).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				return true
			}
		}
	}
	return false
}

// exprIsObj reports whether e is (a parenthesization or unary-& of) an
// identifier bound to obj.
func exprIsObj(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	return ok && (pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj)
}

// exprContainsObjValue reports whether obj's identifier occurs anywhere
// in a composite literal or call inside e — a store or wrap that takes
// over the resource (e.g. `&session{f: f}`, `bufio.NewWriter(f)` kept
// in a struct). Conservative: any occurrence counts as an escape only
// for composite literals, where ownership transfer is the norm.
func exprContainsObjValue(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.CompositeLit); ok {
			ast.Inspect(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
				return !found
			})
			return false
		}
		return true
	})
	return found
}

func blankOnly(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

func usesObj(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// walker flags return statements reachable with the resource live and
// unreleased. The walk is lexical over the statement tree with a
// single bit of state per path — "leaky": the resource has been
// acquired on some path reaching this point and not released since.
// Branches fork the bit and merge with OR (a path that never acquired,
// or that released, contributes false), so an open-and-close inside one
// switch arm does not poison returns after the switch.
type walker struct {
	pass  *analysis.Pass
	obj   types.Object
	spec  *acqSpec
	acq   *ast.AssignStmt
	id    *ast.Ident
	leaks []*ast.ReturnStmt
}

// walk processes stmts with the entry leaky state; it returns the exit
// state and whether every path through stmts terminates (return or
// panic), in which case the exit state never merges into the parent.
func (w *walker) walk(stmts []ast.Stmt, leaky bool) (exitLeaky, terminated bool) {
	skipNext := false
	for i, s := range stmts {
		if skipNext {
			skipNext = false
			continue
		}
		switch s := s.(type) {
		case *ast.AssignStmt:
			if s == w.acq {
				leaky = true
				// The error check immediately following the acquisition
				// guards the not-acquired path; returns inside it are
				// not leaks.
				if i+1 < len(stmts) && isErrCheck(w.pass, stmts[i+1], w.acq) {
					skipNext = true
				}
				continue
			}
			if containsAcq(s, w.acq) {
				leaky = true
			}
			// `cerr := f.Close()` releases just like a bare call.
			if w.releasesWithin(s) {
				leaky = false
			}
		case *ast.DeferStmt:
			if releasesObj(w.pass, s.Call, w.obj, w.spec) {
				leaky = false
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if releasesObj(w.pass, call, w.obj, w.spec) {
					leaky = false
				}
				if isPanic(call) {
					return false, true
				}
			}
		case *ast.ReturnStmt:
			if leaky && !w.returnsObj(s) {
				w.leaks = append(w.leaks, s)
			}
			return false, true
		case *ast.BlockStmt:
			var t bool
			leaky, t = w.walk(s.List, leaky)
			if t {
				return false, true
			}
		case *ast.LabeledStmt:
			var t bool
			leaky, t = w.walk([]ast.Stmt{s.Stmt}, leaky)
			if t {
				return false, true
			}
		case *ast.IfStmt:
			if s.Init != nil {
				// `if err := f.Close(); err != nil { ... }` — the init
				// runs unconditionally before the branch.
				if w.releasesWithin(s.Init) {
					leaky = false
				}
			}
			if containsAcq(s, w.acq) && !stmtIs(s.Body, w.acq) {
				// Acquisition nested in the condition/init: be
				// conservative and treat the resource as live after.
				w.walkNested(s, leaky)
				leaky = true
				continue
			}
			bodyLeaky, bodyTerm := w.walk(s.Body.List, leaky)
			elseLeaky, elseTerm := leaky, false
			hasElse := s.Else != nil
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseLeaky, elseTerm = w.walk(e.List, leaky)
			case *ast.IfStmt:
				elseLeaky, elseTerm = w.walk([]ast.Stmt{e}, leaky)
			}
			if bodyTerm && elseTerm && hasElse {
				return false, true
			}
			leaky = false
			if !bodyTerm {
				leaky = leaky || bodyLeaky
			}
			if !elseTerm {
				leaky = leaky || elseLeaky
			}
		case *ast.ForStmt:
			bodyLeaky, _ := w.walk(s.Body.List, leaky)
			leaky = leaky || bodyLeaky
		case *ast.RangeStmt:
			bodyLeaky, _ := w.walk(s.Body.List, leaky)
			leaky = leaky || bodyLeaky
		case *ast.SwitchStmt:
			var t bool
			leaky, t = w.walkBranches(caseBodies(s.Body), hasDefault(s.Body), leaky)
			if t {
				return false, true
			}
		case *ast.TypeSwitchStmt:
			var t bool
			leaky, t = w.walkBranches(caseBodies(s.Body), hasDefault(s.Body), leaky)
			if t {
				return false, true
			}
		case *ast.SelectStmt:
			var t bool
			leaky, t = w.walkBranches(commBodies(s.Body), true, leaky)
			if t {
				return false, true
			}
		}
	}
	return leaky, false
}

// releasesWithin reports whether any call expression inside s (outside
// nested function literals) releases the tracked resource.
func (w *walker) releasesWithin(s ast.Stmt) bool {
	released := false
	ast.Inspect(s, func(n ast.Node) bool {
		if released {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && releasesObj(w.pass, call, w.obj, w.spec) {
			released = true
		}
		return !released
	})
	return released
}

// walkNested still visits returns inside a statement whose structure
// the walker does not model, so leaks there are not silently missed.
func (w *walker) walkNested(s ast.Stmt, leaky bool) {
	if ifs, ok := s.(*ast.IfStmt); ok {
		w.walk(ifs.Body.List, leaky || containsAcq(s, w.acq))
	}
}

// walkBranches merges the arms of a switch/select: the exit state is
// the OR of every non-terminating arm, plus the entry state when the
// construct is not exhaustive (no default arm — execution can skip
// every arm).
func (w *walker) walkBranches(bodies [][]ast.Stmt, exhaustive bool, leaky bool) (exitLeaky, terminated bool) {
	exit := false
	if !exhaustive {
		exit = leaky
	}
	allTerm := len(bodies) > 0
	for _, body := range bodies {
		l, t := w.walk(body, leaky)
		if !t {
			exit = exit || l
			allTerm = false
		}
	}
	return exit, allTerm && exhaustive
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func commBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, s := range body.List {
		if cc, ok := s.(*ast.CommClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

// containsAcq reports whether the acquisition statement sits anywhere
// inside s.
func containsAcq(s ast.Stmt, acq *ast.AssignStmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if n == acq {
			found = true
		}
		return !found
	})
	return found
}

func stmtIs(b *ast.BlockStmt, acq *ast.AssignStmt) bool {
	for _, s := range b.List {
		if s == acq {
			return true
		}
	}
	return false
}

func isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (w *walker) returnsObj(ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		if exprIsObj(w.pass, res, w.obj) || exprContainsObjValue(w.pass, res, w.obj) {
			return true
		}
	}
	return false
}

// isErrCheck reports whether s is `if <err> != nil { ... }` where
// <err> is the error result defined by the acquisition acq.
func isErrCheck(pass *analysis.Pass, s ast.Stmt, acq *ast.AssignStmt) bool {
	ifs, ok := s.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	cond, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.NEQ {
		return false
	}
	id, ok := ast.Unparen(cond.X).(*ast.Ident)
	if !ok {
		return false
	}
	if nilIdent, ok := ast.Unparen(cond.Y).(*ast.Ident); !ok || nilIdent.Name != "nil" {
		return false
	}
	errObj := pass.TypesInfo.Uses[id]
	if errObj == nil {
		return false
	}
	for _, lhs := range acq.Lhs {
		if lid, ok := lhs.(*ast.Ident); ok {
			if pass.TypesInfo.Defs[lid] == errObj || pass.TypesInfo.Uses[lid] == errObj {
				return true
			}
		}
	}
	return false
}

func releaseText(name string, spec *acqSpec) string {
	if spec.release == "" {
		return "defer " + name + "()"
	}
	return "defer " + name + "." + spec.release + "()"
}

// deferFix builds the insert-`defer` suggested fix: after the error
// check when one immediately follows the acquisition, else directly
// after the acquisition statement.
func deferFix(pass *analysis.Pass, body *ast.BlockStmt, acq *ast.AssignStmt, id *ast.Ident, obj types.Object, spec *acqSpec) *analysis.SuggestedFix {
	insertAfter := ast.Stmt(acq)
	// Locate acq's statement list to find the statement after it.
	if parent, ok := pass.Parent(acq).(*ast.BlockStmt); ok {
		for i, s := range parent.List {
			if s == acq && i+1 < len(parent.List) && isErrCheck(pass, parent.List[i+1], acq) {
				insertAfter = parent.List[i+1]
			}
		}
	}
	at := lineEndPos(pass.Fset, insertAfter.End())
	return &analysis.SuggestedFix{
		Message: "insert " + releaseText(id.Name, spec),
		Edits: []analysis.TextEdit{{
			Pos:     at,
			End:     at,
			NewText: "\n" + releaseText(id.Name, spec),
		}},
	}
}

// lineEndPos returns the position of the newline ending pos's line, so
// an insertion lands after any trailing comment rather than splitting
// it from its statement. Falls back to pos on the last line of a file.
func lineEndPos(fset *token.FileSet, pos token.Pos) token.Pos {
	f := fset.File(pos)
	if f == nil {
		return pos
	}
	line := f.Line(pos)
	if line >= f.LineCount() {
		return pos
	}
	return f.LineStart(line+1) - 1
}

// exportFacts computes ClosesFact for every function in the package
// that releases one of its parameters, iterating to a fixed point so
// same-package helper chains (a calls b calls Close) resolve in any
// declaration order.
func exportFacts(pass *analysis.Pass) {
	type candidate struct {
		fn     *types.Func
		decl   *ast.FuncDecl
		params []types.Object // releasable params, by index
	}
	var cands []candidate
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Params == nil {
				continue
			}
			fnObj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fnObj == nil {
				continue
			}
			var params []types.Object
			releasable := false
			idx := 0
			for _, field := range fd.Type.Params.List {
				names := field.Names
				if len(names) == 0 {
					idx++
					params = append(params, nil)
					continue
				}
				for _, name := range names {
					obj := pass.TypesInfo.Defs[name]
					if obj != nil && isReleasable(obj.Type()) {
						params = append(params, obj)
						releasable = true
					} else {
						params = append(params, nil)
					}
					idx++
				}
			}
			if releasable {
				cands = append(cands, candidate{fn: fnObj, decl: fd, params: params})
			}
		}
	}
	// Fixed point: keep scanning until no new fact appears (bounded by
	// the candidate count — each iteration grants at least one fact).
	for changed := true; changed; {
		changed = false
		for _, c := range cands {
			var have ClosesFact
			known := map[int]bool{}
			if pass.ImportObjectFact(c.fn, &have) {
				for _, i := range have.Params {
					known[i] = true
				}
			}
			var updated []int
			for i, pobj := range c.params {
				if pobj == nil {
					continue
				}
				if known[i] || paramReleased(pass, c.decl.Body, pobj) {
					updated = append(updated, i)
				}
			}
			if len(updated) > len(have.Params) {
				pass.ExportObjectFact(c.fn, &ClosesFact{Params: updated})
				changed = true
			}
		}
	}
}

// paramReleased reports whether body releases pobj: calls pobj.Close()
// (or pobj.Stop(), or pobj() for func-typed params), defers one of
// those, or passes pobj to a function already carrying a ClosesFact.
func paramReleased(pass *analysis.Pass, body *ast.BlockStmt, pobj types.Object) bool {
	released := false
	ast.Inspect(body, func(n ast.Node) bool {
		if released {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if pass.TypesInfo.Uses[fun] == pobj {
				released = true
				return false
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Close" || fun.Sel.Name == "Stop" {
				if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok && pass.TypesInfo.Uses[x] == pobj {
					released = true
					return false
				}
			}
		}
		if callee := analysis.CalleeFunc(pass.TypesInfo, call); callee != nil {
			var fact ClosesFact
			if pass.ImportObjectFact(callee, &fact) {
				for _, pi := range fact.Params {
					if pi < len(call.Args) {
						if id, ok := ast.Unparen(call.Args[pi]).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == pobj {
							released = true
							return false
						}
					}
				}
			}
		}
		return true
	})
	return released
}

// isReleasable reports whether t is a type leakcheck can release: it
// has a Close or Stop method, or it is a no-arg no-result function
// (cancel funcs).
func isReleasable(t types.Type) bool {
	if sig, ok := t.Underlying().(*types.Signature); ok {
		return sig.Params().Len() == 0 && sig.Results().Len() == 0
	}
	for _, name := range []string{"Close", "Stop"} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		if fn, ok := obj.(*types.Func); ok {
			sig := fn.Type().(*types.Signature)
			if sig.Params().Len() == 0 {
				return true
			}
		}
	}
	return false
}
