// Fixture: the fact-consuming side — package b never calls Close
// itself; releases happen through helpers in package a whose ClosesFact
// was exported while a was analyzed.
package b

import (
	"context"
	"os"

	"a"
)

// Handing the file to a.CleanUp counts as the release: clean.
func viaHelper(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	a.CleanUp(f)
	return nil
}

// The fact reaches transitive releasers too (Shutdown -> CleanUp).
func viaChain(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	a.Shutdown(f)
	return nil
}

// Deferring the helper covers every path: clean.
func viaDeferredHelper(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer a.CleanUp(f)
	if f.Name() == "" {
		return os.ErrInvalid
	}
	return nil
}

// Cancel funcs release through fact-carrying helpers as well.
func cancelViaHelper(ctx context.Context) context.Context {
	ctx, cancel := context.WithCancel(ctx)
	a.Stop(cancel)
	return ctx
}

// a.Keep holds the handle without closing it — no fact, so this leaks.
func viaNonReleasing(path string) error {
	f, err := os.Open(path) // want "file `f` from os.Open is never released"
	if err != nil {
		return err
	}
	a.Keep(f)
	return nil
}

// The helper releases, but only on one path; the other return leaks.
func helperOnOnePath(path string, really bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if really {
		a.CleanUp(f)
		return nil
	}
	return nil // want "return leaks file `f` acquired at line"
}
