// Fixture: the fact-producing side of cross-package leak analysis.
// Every function here releases the handle passed to it, so leakcheck
// exports a ClosesFact for each — including Shutdown, which only
// releases transitively through CleanUp (same-package fixed point).
package a

import "io"

// CleanUp closes the handle it is given.
func CleanUp(c io.Closer) {
	if c != nil {
		c.Close()
	}
}

// Shutdown releases its argument by delegating to CleanUp.
func Shutdown(c io.Closer) {
	Vacuous()
	CleanUp(c)
}

// Stop cancels the func it is given.
func Stop(cancel func()) {
	cancel()
}

// Vacuous releases nothing and must not earn a fact.
func Vacuous() {}

// Keep takes a handle but never releases it: no fact.
func Keep(c io.Closer) {
	_ = c
}
