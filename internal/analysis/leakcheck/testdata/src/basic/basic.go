// Fixture: the intra-procedural half of leakcheck — acquisition,
// release, escape, and path-sensitive return coverage.
package basic

import (
	"context"
	"net"
	"os"
)

type holder struct {
	f *os.File
}

// Deferred release covers every path: clean.
func deferred(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_ = f.Name()
	return nil
}

// Never released anywhere: flagged at the acquisition.
func neverReleased(path string) error {
	f, err := os.Open(path) // want "file `f` from os.Open is never released"
	if err != nil {
		return err
	}
	_ = f.Name()
	return nil
}

// Discarding the handle makes release impossible.
func discarded(path string) {
	_, _ = os.Open(path) // want "file returned by os.Open is discarded"
}

// Closed before the only return: clean.
func closedInline(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	_ = f.Name()
	f.Close()
	return nil
}

// Released at the end but leaked on an early error return.
func leakOnErrorPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if err := touch(f); err != nil {
		return err // want "return leaks file `f` acquired at line"
	}
	f.Close()
	return nil
}

// Returning the handle transfers ownership: clean.
func escapesByReturn(path string) (*os.File, error) {
	return openNamed(path)
}

func openNamed(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Storing the handle in a composite literal transfers ownership: clean.
func escapesByStore(path string) (*holder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &holder{f: f}, nil
}

// A handle captured by a goroutine closure outlives the walk: clean.
func escapesByCapture(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	go func() {
		defer f.Close()
		_ = f.Name()
	}()
	return nil
}

// Open-and-close inside one switch arm must not poison returns after
// the switch: clean.
func switchArm(path string, mode int) error {
	var n string
	switch mode {
	case 0:
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		n = f.Name()
		f.Close()
	default:
		n = path
	}
	_ = n
	return nil
}

// Closing in an if-init is a release — the init runs before the branch.
func closeInInit(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

// So is capturing the close error in an assignment.
func closeCaptured(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	cerr := f.Close()
	return cerr
}

// Cancel funcs follow the same contract as Close.
func cancelDeferred(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	_ = ctx
}

func cancelLeaked(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx) // want "cancel func `cancel` from context.WithCancel is never released"
	_ = ctx
	_ = cancel
}

// Listeners are resources too.
func listenerLeaked(addr string) error {
	ln, err := net.Listen("tcp", addr) // want "listener `ln` from net.Listen is never released"
	if err != nil {
		return err
	}
	_ = ln.Addr()
	return nil
}

// A function literal is its own unit: the leak belongs to it.
func inFuncLit(path string) func() error {
	return func() error {
		f, err := os.Open(path) // want "file `f` from os.Open is never released"
		if err != nil {
			return err
		}
		_ = f.Name()
		return nil
	}
}

func touch(f *os.File) error {
	_, err := f.Stat()
	return err
}
