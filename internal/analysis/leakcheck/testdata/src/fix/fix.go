// Fixture: leakcheck's insert-defer suggested fix, checked against
// fix.go.golden and re-analyzed for idempotence.
package fix

import (
	"context"
	"os"
)

// The defer lands after the error check that guards the acquisition.
func afterErrCheck(path string) error {
	f, err := os.Open(path) // want "file `f` from os.Open is never released"
	if err != nil {
		return err
	}
	_ = f.Name()
	return nil
}

// No error result to check: the defer lands right after the acquisition.
func cancelFunc(ctx context.Context) context.Context {
	ctx, cancel := context.WithCancel(ctx) // want "cancel func `cancel` from context.WithCancel is never released"
	_ = cancel
	return ctx
}
