// Suppressions: a finding that is understood and intentional is
// silenced in the source, next to the code it concerns, with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The comment suppresses matching diagnostics on its own line (trailing
// form) or, when it stands alone, on the next source line. The analyzer
// list may be "all". The reason is mandatory: a suppression without one
// is itself reported (as analyzer "suppress"), so exemptions stay
// documented — the same contract staticcheck enforces.
package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

const ignorePrefix = "//lint:ignore"

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	file      string
	line      int  // line the comment sits on
	trailing  bool // comment shares its line with code (suppresses that line only)
	analyzers map[string]bool
	all       bool
}

// Suppressions indexes every //lint:ignore comment of a package.
// Malformed comments (no analyzer list, or no reason) are collected as
// diagnostics so they cannot silently disable nothing.
type Suppressions struct {
	byFileLine map[lineRef][]*suppression
	Malformed  []Diagnostic
}

type lineRef struct {
	file string
	line int
}

// CollectSuppressions parses every //lint:ignore comment in files.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byFileLine: make(map[lineRef][]*suppression)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.Malformed = append(s.Malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "suppress",
						Message:  "malformed //lint:ignore: need an analyzer list and a reason",
					})
					continue
				}
				sup := &suppression{
					file:      pos.Filename,
					line:      pos.Line,
					trailing:  codeBeforeOnLine(fset, f, c),
					analyzers: make(map[string]bool),
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name == "all" {
						sup.all = true
					} else if name != "" {
						sup.analyzers[name] = true
					}
				}
				key := lineRef{sup.file, sup.line}
				s.byFileLine[key] = append(s.byFileLine[key], sup)
			}
		}
	}
	return s
}

// codeBeforeOnLine reports whether any AST node of f ends on c's line
// before c starts — i.e. whether c trails code rather than standing on
// a line of its own.
func codeBeforeOnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	trailing := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || trailing {
			return false
		}
		if _, isFile := n.(*ast.File); isFile {
			return true
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return false
		}
		if n.End() <= c.Pos() && fset.Position(n.End()).Line == line {
			trailing = true
			return false
		}
		// Descend only into subtrees that still overlap c's line.
		return fset.Position(n.Pos()).Line <= line && fset.Position(n.End()).Line >= line ||
			n.Pos() <= c.Pos() && n.End() >= c.Pos()
	})
	return trailing
}

// Suppressed reports whether d is silenced by a suppression: one on
// d's line, or a standalone one on the line above.
func (s *Suppressions) Suppressed(fset *token.FileSet, d Diagnostic) bool {
	if d.Analyzer == "suppress" {
		return false
	}
	pos := fset.Position(d.Pos)
	for _, sup := range s.byFileLine[lineRef{pos.Filename, pos.Line}] {
		if sup.matches(d.Analyzer) {
			return true
		}
	}
	for _, sup := range s.byFileLine[lineRef{pos.Filename, pos.Line - 1}] {
		if !sup.trailing && sup.matches(d.Analyzer) {
			return true
		}
	}
	return false
}

func (sup *suppression) matches(analyzer string) bool {
	return sup.all || sup.analyzers[analyzer]
}
