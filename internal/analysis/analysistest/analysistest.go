// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations written in the fixture source —
// the same contract as golang.org/x/tools/go/analysis/analysistest,
// reimplemented on the stdlib-only framework in internal/analysis.
//
// A fixture lives at <testdata>/src/<pkg>/*.go. A line expecting one or
// more diagnostics carries a trailing comment of the form
//
//	// want `regexp` `regexp`
//
// (double-quoted patterns also work) where each quoted regexp must match
// the message of a distinct
// diagnostic reported on that line. Lines without a want comment must
// produce no diagnostics.
package analysistest

import (
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sddict/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads each fixture package, applies a, and reports mismatches
// between emitted diagnostics and want comments through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewLoader()
	for _, pkg := range pkgs {
		runPackage(t, loader, testdata, a, pkg)
	}
}

func runPackage(t *testing.T, loader *analysis.Loader, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	var files []*ast.File
	imports := map[string]bool{}
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, perr := parser.ParseFile(loader.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			t.Fatalf("parsing fixture: %v", perr)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if path, uerr := strconv.Unquote(imp.Path.Value); uerr == nil {
				imports[path] = true
			}
		}
	}
	var paths []string
	for p := range imports {
		paths = append(paths, p)
	}
	if len(paths) > 0 {
		if err := loader.LoadImports(dir, paths); err != nil {
			t.Fatalf("loading fixture imports: %v", err)
		}
	}
	p, err := loader.Check(pkg, files)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkg, err)
	}

	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, loader.Fset, p.Files, p.Pkg, p.Info, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on fixture %s: %v", a.Name, pkg, err)
	}

	wants := collectWants(t, loader, files)
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		if i := matchWant(wants[key], d.Message); i >= 0 {
			wants[key] = append(wants[key][:i], wants[key][i+1:]...)
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, re)
		}
	}
}

type lineKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses `// want "re" ...` comments into per-line expected
// message patterns.
func collectWants(t *testing.T, loader *analysis.Loader, files []*ast.File) map[lineKey][]*regexp.Regexp {
	t.Helper()
	wants := map[lineKey][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := loader.Fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				for _, quoted := range wantRE.FindAllString(text, -1) {
					pattern, err := strconv.Unquote(quoted)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, quoted, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

func matchWant(res []*regexp.Regexp, message string) int {
	for i, re := range res {
		if re.MatchString(message) {
			return i
		}
	}
	return -1
}
