// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations written in the fixture source —
// the same contract as golang.org/x/tools/go/analysis/analysistest,
// reimplemented on the stdlib-only framework in internal/analysis.
//
// A fixture lives at <testdata>/src/<pkg>/*.go. A line expecting one or
// more diagnostics carries a trailing comment of the form
//
//	// want `regexp` `regexp`
//
// (double-quoted patterns also work) where each quoted regexp must match
// the message of a distinct
// diagnostic reported on that line. Lines without a want comment must
// produce no diagnostics.
//
// Packages named in one Run call share a loader and a fact store and
// are analyzed in argument order, so a fixture package may import an
// earlier one (by its bare fixture name) and the analyzer sees the
// facts it exported there — the cross-package half of the facts model.
//
// RunWithSuggestedFixes additionally applies every suggested fix and
// compares the result against <file>.golden, then re-analyzes the
// fixed source to prove the fixes converge (no fixable finding may
// survive its own fix).
package analysistest

import (
	"bytes"
	"go/ast"
	"go/format"
	"go/parser"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sddict/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads each fixture package, applies a, and reports mismatches
// between emitted diagnostics and want comments through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewLoader()
	facts := analysis.NewFactStore()
	for _, pkg := range pkgs {
		runPackage(t, loader, facts, testdata, a, pkg, false)
	}
}

// RunWithSuggestedFixes is Run plus golden-file checking of the
// analyzer's suggested fixes: for every fixture file that produced at
// least one fix, the fixed-and-gofmt'd source must equal
// <file>.golden, and re-running the analyzer over the fixed source
// must yield no further fixable diagnostics (idempotence).
func RunWithSuggestedFixes(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewLoader()
	facts := analysis.NewFactStore()
	for _, pkg := range pkgs {
		runPackage(t, loader, facts, testdata, a, pkg, true)
	}
}

func runPackage(t *testing.T, loader *analysis.Loader, facts *analysis.FactStore, testdata string, a *analysis.Analyzer, pkg string, checkFixes bool) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	var files []*ast.File
	imports := map[string]bool{}
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, perr := parser.ParseFile(loader.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			t.Fatalf("parsing fixture: %v", perr)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if path, uerr := strconv.Unquote(imp.Path.Value); uerr == nil {
				imports[path] = true
			}
		}
	}
	var paths []string
	for p := range imports {
		paths = append(paths, p)
	}
	if len(paths) > 0 {
		// Fixture-to-fixture imports resolve from packages already
		// checked in this Run call; only the remainder (stdlib, module
		// packages) goes through `go list`.
		if err := loader.LoadImports(dir, paths); err != nil {
			t.Fatalf("loading fixture imports: %v", err)
		}
	}
	p, err := loader.Check(pkg, files)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkg, err)
	}

	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, loader.Fset, p.Files, p.Pkg, p.Info, facts, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on fixture %s: %v", a.Name, pkg, err)
	}

	wants := collectWants(t, loader, files)
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		if i := matchWant(wants[key], d.Message); i >= 0 {
			wants[key] = append(wants[key][:i], wants[key][i+1:]...)
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, re)
		}
	}

	if checkFixes {
		var sources []string
		for _, f := range files {
			sources = append(sources, loader.Fset.Position(f.Pos()).Filename)
		}
		checkSuggestedFixes(t, loader, a, pkg, sources, diags)
	}
}

// checkSuggestedFixes applies the fixes from diags in memory, diffs
// each changed file against its .golden sibling, and re-analyzes the
// fixed source for convergence.
func checkSuggestedFixes(t *testing.T, loader *analysis.Loader, a *analysis.Analyzer, pkg string, sources []string, diags []analysis.Diagnostic) {
	t.Helper()
	fixed := map[string][]byte{}
	results, err := analysis.ApplyFixes(loader.Fset, diags, func(path string, data []byte) error {
		fixed[path] = data
		return nil
	})
	if err != nil {
		t.Fatalf("applying %s fixes in %s: %v", a.Name, pkg, err)
	}
	if len(results) == 0 {
		t.Errorf("fixture %s produced no suggested fixes; RunWithSuggestedFixes expects at least one", pkg)
		return
	}
	for _, r := range results {
		if r.Skipped > 0 {
			t.Errorf("%s: %d overlapping edits skipped", r.Path, r.Skipped)
		}
	}
	for path, data := range fixed {
		golden := path + ".golden"
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Errorf("fix output for %s: missing golden file %s; got:\n%s", path, golden, data)
			continue
		}
		if !bytes.Equal(data, want) {
			t.Errorf("fixed %s differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, golden, data, want)
		}
		if formatted, ferr := format.Source(data); ferr != nil || !bytes.Equal(formatted, data) {
			t.Errorf("fixed %s is not gofmt-clean (err=%v)", path, ferr)
		}
	}

	// Idempotence: the fixed source must not provoke further fixes.
	// Re-check the whole package with fixed bytes substituted in,
	// under a fresh loader so positions don't collide.
	reloader := analysis.NewLoader()
	var refiles []*ast.File
	imports := map[string]bool{}
	for _, path := range sources {
		var src any
		if data, ok := fixed[path]; ok {
			src = data
		}
		f, perr := parser.ParseFile(reloader.Fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			t.Errorf("fixed %s does not parse: %v", path, perr)
			return
		}
		refiles = append(refiles, f)
		for _, imp := range f.Imports {
			if p, uerr := strconv.Unquote(imp.Path.Value); uerr == nil {
				imports[p] = true
			}
		}
	}
	var paths []string
	for p := range imports {
		paths = append(paths, p)
	}
	if len(paths) > 0 {
		if err := reloader.LoadImports(filepath.Dir(sources[0]), paths); err != nil {
			t.Errorf("reloading fixed imports: %v", err)
			return
		}
	}
	rp, err := reloader.Check(pkg, refiles)
	if err != nil {
		t.Errorf("type-checking fixed %s: %v", pkg, err)
		return
	}
	var rediags []analysis.Diagnostic
	repass := analysis.NewPass(a, reloader.Fset, rp.Files, rp.Pkg, rp.Info, nil, func(d analysis.Diagnostic) {
		rediags = append(rediags, d)
	})
	if err := a.Run(repass); err != nil {
		t.Errorf("%s on fixed %s: %v", a.Name, pkg, err)
		return
	}
	for _, d := range rediags {
		if len(d.SuggestedFixes) > 0 {
			t.Errorf("%s: fix not idempotent: fixed source still offers %q at %s",
				pkg, d.Message, reloader.Fset.Position(d.Pos))
		}
	}
}

type lineKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses `// want "re" ...` comments into per-line expected
// message patterns.
func collectWants(t *testing.T, loader *analysis.Loader, files []*ast.File) map[lineKey][]*regexp.Regexp {
	t.Helper()
	wants := map[lineKey][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := loader.Fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				for _, quoted := range wantRE.FindAllString(text, -1) {
					pattern, err := strconv.Unquote(quoted)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, quoted, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

func matchWant(res []*regexp.Regexp, message string) int {
	for i, re := range res {
		if re.MatchString(message) {
			return i
		}
	}
	return -1
}
