package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// Target reports whether the package matched the load patterns
	// directly (rather than being pulled in as a dependency); analyzers
	// run only over target packages.
	Target bool
}

// Loader type-checks packages from source using only the standard
// library: `go list -e -json -deps` supplies the file sets and the
// dependency-ordered closure, and go/types checks each package against
// the already-checked results of its imports. This replaces
// golang.org/x/tools/go/packages, which is unavailable in this module's
// no-external-dependency build environment.
type Loader struct {
	Fset *token.FileSet
	pkgs map[string]*types.Package
}

// NewLoader returns an empty loader.
func NewLoader() *Loader {
	return &Loader{Fset: token.NewFileSet(), pkgs: make(map[string]*types.Package)}
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct {
		Err string
	}
}

// Load expands patterns (run from dir, e.g. "./...") and returns the
// type-checked module packages in dependency order: imported packages
// precede their importers, so a runner consuming the slice front to
// back sees facts for a dependency before analyzing its users. Standard
// library packages are type-checked (with function bodies skipped) but
// not returned; module packages pulled in only as dependencies are
// returned with Target=false — analyzed for facts, not reported on.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	list, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, lp := range list {
		p, err := l.check(lp)
		if err != nil {
			// Dependency packages must check cleanly for target results
			// to be trustworthy; surface the first hard failure.
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// LoadImports type-checks the named import paths (and their closure)
// so that Check can resolve them. Used by analysistest to satisfy a
// testdata package's imports.
func (l *Loader) LoadImports(dir string, paths []string) error {
	var missing []string
	for _, p := range paths {
		if _, ok := l.pkgs[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	list, err := goList(dir, missing)
	if err != nil {
		return err
	}
	for _, lp := range list {
		if _, err := l.check(lp); err != nil {
			return err
		}
	}
	return nil
}

// Check type-checks a bare file set as the package importPath — used for
// testdata packages that live outside the module's package graph. Its
// imports must already be loaded (see LoadImports).
func (l *Loader) Check(importPath string, files []*ast.File) (*Package, error) {
	return l.typeCheck(importPath, "", files, false, true)
}

func (l *Loader) check(lp listPackage) (*Package, error) {
	if lp.ImportPath == "unsafe" {
		l.pkgs["unsafe"] = types.Unsafe
		return nil, nil
	}
	if _, done := l.pkgs[lp.ImportPath]; done {
		return nil, nil
	}
	if lp.Error != nil && !lp.DepOnly {
		// Tolerate pattern matches with no buildable files (e.g. a
		// directory holding only _test.go files); fail on real errors.
		if len(lp.GoFiles) == 0 && strings.Contains(lp.Error.Err, "no non-test Go files") {
			return nil, nil
		}
		return nil, fmt.Errorf("loading %s: %s", lp.ImportPath, lp.Error.Err)
	}
	if len(lp.GoFiles) == 0 {
		return nil, nil
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// Module packages keep their function bodies even when they are
	// only dependencies: fact-producing analyzers need to see inside
	// helper bodies ("does this close its argument?"). Only the
	// standard library is checked API-only.
	target := !lp.DepOnly && !lp.Standard
	p, err := l.typeCheck(lp.ImportPath, lp.Dir, files, lp.Standard, target)
	if err != nil || lp.Standard {
		return nil, err
	}
	return p, nil
}

func (l *Loader) typeCheck(importPath, dir string, files []*ast.File, bodiesIgnored, target bool) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	conf := types.Config{
		Importer:         importerFunc(l.imported),
		IgnoreFuncBodies: bodiesIgnored,
		FakeImportC:      true,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, _ := conf.Check(importPath, l.Fset, files, info)
	if firstErr != nil && target {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, firstErr)
	}
	l.pkgs[importPath] = pkg
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		Target:     target,
	}, nil
}

func (l *Loader) imported(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("package %q not loaded", path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// goList runs `go list -e -json -deps` and decodes the dependency-ordered
// package stream. CGO is disabled so every listed package type-checks
// from its pure-Go file set.
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var list []listPackage
	for {
		var lp listPackage
		if err := dec.Decode(&lp); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		list = append(list, lp)
	}
	return list, nil
}
