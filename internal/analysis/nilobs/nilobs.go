// Package nilobs enforces the nil-observer contract of internal/obs: a
// nil *Metrics, *Tracer, or *Progress is "observability off", so every
// exported pointer-receiver method in a package named obs must guard
// the receiver before touching its fields. The contract is what lets
// every other layer thread observers through without nil checks — which
// is also why this analyzer's second half exists: a call site that
// wraps a nil-safe method in its own `if x != nil` guard re-introduces
// the noise the contract removed, so nilobs flags the guard as
// redundant and offers the unwrapped call as a fix.
//
// Cross-package reasoning rides the facts layer: while the obs package
// is analyzed, each method that honors the contract exports a
// NilSafeFact; importing packages consume it to spot redundant guards.
package nilobs

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"sddict/internal/analysis"
)

// NilSafeFact marks a method that is a no-op (or otherwise safe) when
// its receiver is nil.
type NilSafeFact struct{}

// AFact marks NilSafeFact as a fact type.
func (*NilSafeFact) AFact() {}

// Analyzer is the nil-observer contract checker.
var Analyzer = &analysis.Analyzer{
	Name:      "nilobs",
	Doc:       "obs methods must tolerate nil receivers; nil-safe calls need no guard",
	Run:       run,
	FactTypes: []analysis.Fact{(*NilSafeFact)(nil)},
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "obs" {
		checkObsPackage(pass)
	}
	checkRedundantGuards(pass)
	return nil
}

// checkObsPackage verifies the contract on every exported
// pointer-receiver method and exports NilSafeFact for the compliant
// ones.
func checkObsPackage(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv := receiverObj(pass, fd)
			if recv == nil || !isPointerReceiver(recv) {
				continue
			}
			guardPos, derefPos := guardAndDeref(pass, fd.Body, recv)
			if derefPos == token.NoPos || (guardPos != token.NoPos && guardPos < derefPos) {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					pass.ExportObjectFact(fn, &NilSafeFact{})
				}
				continue
			}
			d := analysis.Diagnostic{
				Pos: fd.Name.Pos(),
				Message: "exported method " + fd.Name.Name +
					" dereferences its receiver before a nil guard (nil observer must be a no-op)",
			}
			if fix := guardFix(pass, fd, recv); fix != nil {
				d.SuggestedFixes = []analysis.SuggestedFix{*fix}
			}
			pass.Report(d)
		}
	}
}

func receiverObj(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil // unnamed receiver cannot be dereferenced
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

func isPointerReceiver(recv types.Object) bool {
	_, ok := recv.Type().(*types.Pointer)
	return ok
}

// guardAndDeref scans body for the first nil comparison of recv and the
// first dereference of a recv field. Lexical position order stands in
// for dominance: `if o == nil { return }` as the first statement, and
// `return o != nil && o.enabled` both place the guard before the
// dereference. Method calls through recv are not dereferences — the
// callee enforces its own contract.
func guardAndDeref(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) (guardPos, derefPos token.Pos) {
	guardPos, derefPos = token.NoPos, token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if (n.Op == token.EQL || n.Op == token.NEQ) && comparesToNil(pass, n, recv) {
				if guardPos == token.NoPos || n.Pos() < guardPos {
					guardPos = n.Pos()
				}
			}
		case *ast.SelectorExpr:
			id, ok := ast.Unparen(n.X).(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != recv {
				return true
			}
			sel, ok := pass.TypesInfo.Selections[n]
			if !ok {
				return true
			}
			// A field access is a dereference. So is a call to an
			// unexported method: helpers skip the guard and rely on the
			// exported caller having checked already.
			deref := sel.Kind() == types.FieldVal
			if fn, isFn := sel.Obj().(*types.Func); isFn && !fn.Exported() {
				deref = true
			}
			if deref && (derefPos == token.NoPos || n.Pos() < derefPos) {
				derefPos = n.Pos()
			}
		}
		return true
	})
	return guardPos, derefPos
}

func comparesToNil(pass *analysis.Pass, be *ast.BinaryExpr, recv types.Object) bool {
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(be.X) && isNil(be.Y)) || (isNil(be.X) && isRecv(be.Y))
}

// guardFix inserts `if recv == nil { return <zeros> }` as the method's
// first statement; nil when a result type has no obvious zero value.
func guardFix(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object) *analysis.SuggestedFix {
	ret := "return"
	if fd.Type.Results != nil && fd.Type.Results.NumFields() > 0 {
		var zeros []string
		sig := pass.TypesInfo.Defs[fd.Name].Type().(*types.Signature)
		for i := 0; i < sig.Results().Len(); i++ {
			z := zeroValue(sig.Results().At(i).Type())
			if z == "" {
				return nil
			}
			zeros = append(zeros, z)
		}
		ret = "return " + joinComma(zeros)
	}
	if len(fd.Body.List) == 0 {
		return nil
	}
	at := fd.Body.List[0].Pos()
	return &analysis.SuggestedFix{
		Message: "guard nil receiver first",
		Edits: []analysis.TextEdit{{
			Pos:     at,
			End:     at,
			NewText: "if " + recv.Name() + " == nil {\n" + ret + "\n}\n",
		}},
	}
}

func zeroValue(t types.Type) string {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch {
		case u.Info()&types.IsNumeric != 0:
			return "0"
		case u.Info()&types.IsString != 0:
			return `""`
		case u.Info()&types.IsBoolean != 0:
			return "false"
		}
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return "nil"
	}
	return ""
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

// checkRedundantGuards flags `if x != nil { x.Method() }` where Method
// carries a NilSafeFact: the guard re-adds the noise the nil-observer
// contract exists to remove.
func checkRedundantGuards(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok || ifs.Init != nil || ifs.Else != nil || len(ifs.Body.List) != 1 {
				return true
			}
			cond, ok := ifs.Cond.(*ast.BinaryExpr)
			if !ok || cond.Op != token.NEQ {
				return true
			}
			guarded := nilGuardOperand(pass, cond)
			if guarded == nil {
				return true
			}
			es, ok := ifs.Body.List[0].(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != guarded {
				return true
			}
			callee := analysis.CalleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			var fact NilSafeFact
			if !pass.ImportObjectFact(callee, &fact) {
				return true
			}
			pass.Report(analysis.Diagnostic{
				Pos: ifs.Pos(),
				Message: "redundant nil guard: " + callee.Name() +
					" is nil-safe (nil receiver is a no-op)",
				SuggestedFixes: []analysis.SuggestedFix{{
					Message: "call " + callee.Name() + " directly",
					Edits: []analysis.TextEdit{{
						Pos:     ifs.Pos(),
						End:     ifs.End(),
						NewText: nodeString(pass.Fset, es),
					}},
				}},
			})
			return true
		})
	}
}

// nilGuardOperand returns the object compared against nil in `x != nil`
// (either operand order), or nil when the condition is something else.
func nilGuardOperand(pass *analysis.Pass, cond *ast.BinaryExpr) types.Object {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil" && pass.TypesInfo.Uses[id] == types.Universe.Lookup("nil")
	}
	if id, ok := ast.Unparen(cond.X).(*ast.Ident); ok && isNil(cond.Y) {
		return pass.TypesInfo.Uses[id]
	}
	if id, ok := ast.Unparen(cond.Y).(*ast.Ident); ok && isNil(cond.X) {
		return pass.TypesInfo.Uses[id]
	}
	return nil
}

func nodeString(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return ""
	}
	return buf.String()
}
