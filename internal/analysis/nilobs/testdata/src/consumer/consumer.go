// Fixture: the fact-consuming side — redundant nil guards around
// methods the obs package proved nil-safe.
package consumer

import "obs"

func record(m *obs.Meter) {
	if m != nil { // want "redundant nil guard: Inc is nil-safe"
		m.Inc()
	}
}

func recordFlipped(m *obs.Meter) {
	if nil != m { // want "redundant nil guard: Inc is nil-safe"
		m.Inc()
	}
}

// Broken never earned a fact, so guarding it is legitimate.
func guardBroken(m *obs.Meter) {
	if m != nil {
		_ = m.Broken()
	}
}

// A guard with more than the single call is doing real work: clean.
func guardPlusWork(m *obs.Meter) int {
	calls := 0
	if m != nil {
		m.Inc()
		calls++
	}
	return calls
}

// An unguarded call is the idiom the contract wants: clean.
func direct(m *obs.Meter) {
	m.Inc()
}
