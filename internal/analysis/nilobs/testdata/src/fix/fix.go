// Fixture: both nilobs suggested fixes in one package — the inserted
// receiver guard and the unwrapped redundant call-site guard.
package obs

// Meter is an observer; a nil *Meter means metrics are off.
type Meter struct {
	count int64
}

// Inc is nil-safe and earns the fact consumed below.
func (m *Meter) Inc() {
	if m == nil {
		return
	}
	m.count++
}

// Broken needs the guard inserted.
func (m *Meter) Broken() int64 { // want "exported method Broken dereferences its receiver before a nil guard"
	return m.count
}

// Use wraps a nil-safe method in a redundant guard.
func Use(m *Meter) {
	if m != nil { // want "redundant nil guard: Inc is nil-safe"
		m.Inc()
	}
}
