// Fixture: the nil-observer contract inside a package named obs.
package obs

// Meter is an observer; a nil *Meter means metrics are off.
type Meter struct {
	count   int64
	enabled bool
}

// Inc guards first: nil-safe, earns a NilSafeFact.
func (m *Meter) Inc() {
	if m == nil {
		return
	}
	m.count++
}

// Enabled guards inside the boolean expression — the comparison
// precedes the dereference, which satisfies the contract.
func (m *Meter) Enabled() bool {
	return m != nil && m.enabled
}

// Count guards on the second statement; still before the dereference.
func (m *Meter) Count() int64 {
	var zero int64
	if m == nil {
		return zero
	}
	return m.count
}

// Broken dereferences before any guard.
func (m *Meter) Broken() int64 { // want "exported method Broken dereferences its receiver before a nil guard"
	return m.count
}

// BackwardGuard checks nil only after touching the field.
func (m *Meter) BackwardGuard() int64 { // want "exported method BackwardGuard dereferences its receiver before a nil guard"
	c := m.count
	if m == nil {
		return 0
	}
	return c
}

// ViaHelper reaches the fields through an unexported helper, which
// counts as a dereference because helpers skip the guard.
func (m *Meter) ViaHelper() { // want "exported method ViaHelper dereferences its receiver before a nil guard"
	m.bump(1)
}

// bump is unexported: it relies on exported callers having guarded.
func (m *Meter) bump(n int64) {
	m.count += n
}

// Reset delegates to an exported method only: nil-safe by composition.
func (m *Meter) Reset() {
	m.Inc()
}
