package nilobs_test

import (
	"testing"

	"sddict/internal/analysis/analysistest"
	"sddict/internal/analysis/nilobs"
)

// TestContractAndFacts analyzes the obs fixture (contract enforcement,
// fact export) and then a consumer that must see those facts.
func TestContractAndFacts(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nilobs.Analyzer, "obs", "consumer")
}

func TestSuggestedFixes(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, analysistest.TestData(), nilobs.Analyzer, "fix")
}
