package analysis_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"sddict/internal/analysis"
)

func outputFixture(t *testing.T) (*token.FileSet, []analysis.Diagnostic, string) {
	t.Helper()
	fset := token.NewFileSet()
	base := string(filepath.Separator) + "repo"
	src := "package p\n\nvar x = 1\n"
	tf := fset.AddFile(filepath.Join(base, "p", "p.go"), -1, len(src))
	tf.SetLinesForContent([]byte(src))
	diags := []analysis.Diagnostic{
		{
			Pos: tf.Pos(strings.Index(src, "var")), Analyzer: "demo", Message: "first",
			SuggestedFixes: []analysis.SuggestedFix{{
				Message: "swap",
				Edits: []analysis.TextEdit{{
					Pos: tf.Pos(strings.Index(src, "1")), End: tf.Pos(strings.Index(src, "1") + 1), NewText: "2",
				}},
			}},
		},
		{Pos: tf.Pos(strings.Index(src, "x")), Analyzer: "other", Message: "second"},
	}
	return fset, diags, base
}

func TestWriteJSONShapeAndDeterminism(t *testing.T) {
	fset, diags, base := outputFixture(t)
	var first, second bytes.Buffer
	if err := analysis.WriteJSON(&first, fset, base, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := analysis.WriteJSON(&second, fset, base, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("two WriteJSON runs over the same diagnostics differ")
	}

	var findings []analysis.JSONFinding
	if err := json.Unmarshal(first.Bytes(), &findings); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %d, want 2", len(findings))
	}
	f := findings[0]
	if f.File != filepath.Join("p", "p.go") || f.Line != 3 || f.Analyzer != "demo" {
		t.Errorf("finding[0] = %+v, want relative path p/p.go line 3 analyzer demo", f)
	}
	if len(f.Fixes) != 1 || len(f.Fixes[0].Edits) != 1 || f.Fixes[0].Edits[0].NewText != "2" {
		t.Errorf("finding[0] fixes = %+v, want the swap edit", f.Fixes)
	}
	if len(findings[1].Fixes) != 0 {
		t.Errorf("finding[1] carries fixes it should not: %+v", findings[1].Fixes)
	}
}

func TestWriteSARIF(t *testing.T) {
	fset, diags, base := outputFixture(t)
	analyzers := []*analysis.Analyzer{
		{Name: "demo", Doc: "demo doc"},
		{Name: "idle", Doc: "registered but silent"},
		{Name: "other", Doc: "other doc"},
	}
	var buf bytes.Buffer
	if err := analysis.WriteSARIF(&buf, fset, base, analyzers, diags); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version/schema = %q / %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "sddlint" || len(run.Tool.Driver.Rules) != 3 {
		t.Errorf("driver = %s with %d rules, want sddlint with every analyzer as a rule",
			run.Tool.Driver.Name, len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "demo" || r.Level != "warning" {
		t.Errorf("result[0] = %+v", r)
	}
	if uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "p/p.go" {
		t.Errorf("URI = %q, want forward-slash relative p/p.go", uri)
	}
	if l := r.Locations[0].PhysicalLocation.Region.StartLine; l != 3 {
		t.Errorf("startLine = %d, want 3", l)
	}
}
