package concurrency_test

import (
	"testing"

	"sddict/internal/analysis/analysistest"
	"sddict/internal/analysis/concurrency"
)

func TestConcurrency(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), concurrency.Analyzer, "a")
}
