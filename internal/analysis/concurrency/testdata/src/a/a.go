// Fixture for the concurrency analyzer: naked goroutines, hand-rolled
// WaitGroup fan-out, and shared generators captured by pool tasks.
package a

import (
	"context"
	"math/rand"
	"sync"

	"sddict/internal/par"
)

func work(i int) int { return i }

// --- naked goroutines -------------------------------------------------

func nakedGo() {
	go work(1) // want `goroutine started outside internal/par`
}

func nakedGoClosure(ch chan int) {
	go func() { ch <- work(2) }() // want `goroutine started outside internal/par`
}

// --- sync.WaitGroup ---------------------------------------------------

func handRolled(n int) {
	var wg sync.WaitGroup // want `sync.WaitGroup outside internal/par`
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want `goroutine started outside internal/par`
			defer wg.Done()
			work(i)
		}()
	}
	wg.Wait()
}

type batch struct {
	wg sync.WaitGroup // want `sync.WaitGroup outside internal/par`
}

func takesGroup(wg *sync.WaitGroup) { // want `sync.WaitGroup outside internal/par`
	wg.Wait()
}

// Other sync primitives stay legal: a mutex guards state, it does not
// fan work out.
func mutexIsFine() {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
	work(3)
}

// --- shared generators in pool tasks ----------------------------------

func sharedGenerator(ctx context.Context, seed int64) ([]int, error) {
	r := rand.New(rand.NewSource(seed))
	return par.Map(ctx, par.New(4), 10, func(ctx context.Context, i int) (int, error) {
		return r.Intn(100), nil // want `captures shared generator r`
	})
}

func sharedGeneratorStream(ctx context.Context, r *rand.Rand) int {
	return par.Stream(ctx, nil, 10, func(ctx context.Context, i int) int {
		return r.Intn(100) // want `captures shared generator r`
	}, func(i, v int) bool { return true })
}

func perTaskGenerator(ctx context.Context, seed int64) ([]int, error) {
	return par.Map(ctx, par.New(4), 10, func(ctx context.Context, i int) (int, error) {
		r := par.RNG(seed, i) // ok: derived inside the task from the root seed
		return r.Intn(100), nil
	})
}

// A generator used outside any pool task is the determinism analyzer's
// business, not this one's.
func sequentialGenerator(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(100)
}
