// Package concurrency enforces the module's single-pool concurrency
// discipline (DESIGN.md §9): all parallelism flows through internal/par,
// whose ordered merge is what keeps results byte-identical across worker
// counts. Three violations are reported everywhere outside internal/par:
//
//   - a naked `go` statement (an unmanaged goroutine has no ordered
//     result merge, no bounded speculation, and no panic transport),
//   - any use of sync.WaitGroup (hand-rolled fan-out bypasses the pool;
//     internal/par is its only sanctioned home),
//   - a par task closure capturing a *rand.Rand from the enclosing scope
//     (tasks drawing from a shared generator consume it in completion
//     order, destroying replayability; derive per-task streams with
//     par.RNG / par.Seed inside the task instead).
package concurrency

import (
	"go/ast"
	"go/types"

	"sddict/internal/analysis"
)

// Analyzer is the concurrency-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "concurrency",
	Doc:  "forbid goroutines and sync.WaitGroup outside internal/par, and *rand.Rand captures in par task closures",
	Run:  run,
}

// parPkg is the one package allowed to start goroutines and use
// sync.WaitGroup.
const parPkg = "sddict/internal/par"

// obsPkg is additionally allowed goroutines for its debug listeners
// (pprof, live metrics). They serve read-only measurement and produce
// no result that could merge into a computation, so the pool's
// ordered-merge discipline has nothing to order there (see
// internal/obs/pprof.go).
const obsPkg = "sddict/internal/obs"

// cliPkg hosts the signal watcher in cli.Main: a process-lifecycle
// goroutine that cancels the run context on the first SIGINT/SIGTERM
// and force-exits on the second. Like the obs listeners it merges no
// result into any computation.
const cliPkg = "sddict/internal/cli"

// servePkg is the diagnosis HTTP service: net/http serves each request
// on its own goroutine by design, and the drain path needs the
// listener's Serve loop running concurrently with Shutdown. Request
// handling is stateless per request (the shared registry is
// mutex-guarded), so there is no fan-out result to merge.
const servePkg = "sddict/internal/serve"

// exempt reports whether a package may use raw concurrency primitives.
// Fixture packages (outside the module) are never exempt, so the
// analyzer's own tests can exercise every diagnostic.
func exempt(path string) bool {
	switch path {
	case parPkg, obsPkg, cliPkg, servePkg:
		return true
	}
	return false
}

func run(pass *analysis.Pass) error {
	checkRaw := !exempt(pass.Pkg.Path())
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if checkRaw {
					pass.Reportf(n.Pos(), "goroutine started outside internal/par; run the work through a par.Pool so results merge deterministically")
				}
			case *ast.SelectorExpr:
				if checkRaw {
					checkWaitGroup(pass, n)
				}
			case *ast.CallExpr:
				checkTaskClosures(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkWaitGroup flags any mention of the sync.WaitGroup type: variable
// declarations, struct fields, parameters. Method calls on a WaitGroup
// value need such a mention somewhere, so flagging the type reference is
// enough to keep hand-rolled fan-out out of the tree.
func checkWaitGroup(pass *analysis.Pass, sel *ast.SelectorExpr) {
	if sel.Sel.Name != "WaitGroup" {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "sync" {
		return
	}
	pass.Reportf(sel.Pos(), "sync.WaitGroup outside internal/par; hand-rolled fan-out bypasses the pool's ordered merge and panic transport")
}

// checkTaskClosures inspects calls into internal/par: every func-literal
// argument is a task (or consumer) the pool will run, and must not
// capture a *rand.Rand from the enclosing scope.
func checkTaskClosures(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != parPkg {
		return
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		reportCapturedRand(pass, fn.Name(), lit)
	}
}

// reportCapturedRand reports identifiers inside lit that refer to a
// *rand.Rand (or rand.Rand) variable declared outside the literal.
func reportCapturedRand(pass *analysis.Pass, callee string, lit *ast.FuncLit) {
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		// Declared inside the literal (params, locals): a per-task
		// generator, which is the approved pattern.
		if lit.Pos() <= obj.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		if !isRandType(obj.Type()) {
			return true
		}
		seen[obj] = true
		pass.Reportf(id.Pos(), "par.%s task captures shared generator %s; tasks draw in completion order through it — derive a per-task stream with par.RNG inside the task", callee, obj.Name())
		return true
	})
}

// isRandType reports whether t is math/rand.Rand (v1 or v2), possibly
// behind a pointer.
func isRandType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != "Rand" {
		return false
	}
	path := obj.Pkg().Path()
	return path == "math/rand" || path == "math/rand/v2"
}
