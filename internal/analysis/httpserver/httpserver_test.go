package httpserver_test

import (
	"testing"

	"sddict/internal/analysis/analysistest"
	"sddict/internal/analysis/httpserver"
)

func TestHTTPServer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), httpserver.Analyzer, "a")
}
