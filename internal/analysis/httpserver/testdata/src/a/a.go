// Fixture for the httpserver analyzer: timeout-less HTTP server
// configurations.
package a

import (
	"net/http"
	"time"
)

func bare(addr string, h http.Handler) error {
	return http.ListenAndServe(addr, h) // want `http\.ListenAndServe serves with no timeouts`
}

func bareTLS(addr, cert, key string, h http.Handler) error {
	return http.ListenAndServeTLS(addr, cert, key, h) // want `http\.ListenAndServeTLS serves with no timeouts`
}

func naked(h http.Handler) *http.Server {
	return &http.Server{Addr: ":1", Handler: h} // want `without ReadHeaderTimeout` `without IdleTimeout`
}

func headerOnly(h http.Handler) *http.Server {
	return &http.Server{ // want `without IdleTimeout`
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
}

func idleOnly(h http.Handler) *http.Server {
	return &http.Server{ // want `without ReadHeaderTimeout`
		Handler:     h,
		IdleTimeout: 60 * time.Second,
	}
}

func hardened(h http.Handler) *http.Server {
	return &http.Server{ // ok: both phases bounded
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}

func readTimeoutCounts(h http.Handler) *http.Server {
	return &http.Server{ // ok: ReadTimeout subsumes the header phase
		Handler:     h,
		ReadTimeout: 10 * time.Second,
		IdleTimeout: 60 * time.Second,
	}
}

type fakeServer struct {
	Addr string
}

func unrelated() fakeServer {
	return fakeServer{Addr: ":1"} // ok: not net/http.Server
}

func serveOnListener(srv *http.Server) {
	// ok: methods on an already-built server are not flagged; the
	// literal that built it was.
	_ = srv.ListenAndServe()
}
