// Package httpserver guards the service-hardening invariant (DESIGN.md
// §12): every HTTP listener in the module must bound how long a
// connection can sit in its read and idle states. A timeout-less server
// hands resource exhaustion to the slowest client — a peer dribbling
// header bytes (slow-loris) pins a connection forever, and idle
// keep-alives accumulate until the file-descriptor table fills. Two
// patterns are flagged in library and command packages:
//
//   - http.ListenAndServe / http.ListenAndServeTLS: the package-level
//     helpers construct a zero-valued http.Server with no way to set
//     timeouts at all;
//   - an http.Server composite literal missing both ReadHeaderTimeout
//     and ReadTimeout, or missing IdleTimeout.
package httpserver

import (
	"go/ast"
	"go/types"
	"strings"

	"sddict/internal/analysis"
)

// Analyzer is the HTTP-server-hardening checker.
var Analyzer = &analysis.Analyzer{
	Name: "httpserver",
	Doc:  "forbid timeout-less http.Server configurations (slow-loris and idle-connection exhaustion)",
	Run:  run,
}

// inScope covers the library and command packages, like atomicwrite:
// examples are documentation, analysistest fixture packages (outside the
// module) are always in scope.
func inScope(path string) bool {
	return strings.HasPrefix(path, "sddict/internal/") ||
		strings.HasPrefix(path, "sddict/cmd/") ||
		!strings.HasPrefix(path, "sddict")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				for _, name := range [...]string{"ListenAndServe", "ListenAndServeTLS"} {
					if analysis.IsPkgFunc(pass.TypesInfo, n, "net/http", name) {
						pass.Reportf(n.Pos(), "http.%s serves with no timeouts; build an http.Server with ReadHeaderTimeout and IdleTimeout instead", name)
					}
				}
			case *ast.CompositeLit:
				checkServerLit(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkServerLit flags net/http.Server literals whose field list bounds
// neither the header-read phase nor idle keep-alives. Only composite
// literals are inspected: the module builds servers in one expression,
// and a literal is where the omission is visible locally.
func checkServerLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || !isHTTPServer(tv.Type) {
		return
	}
	fields := map[string]bool{}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			fields[id.Name] = true
		}
	}
	if !fields["ReadHeaderTimeout"] && !fields["ReadTimeout"] {
		pass.Reportf(lit.Pos(), "http.Server without ReadHeaderTimeout (or ReadTimeout): a client dribbling header bytes pins the connection forever (slow-loris)")
	}
	if !fields["IdleTimeout"] {
		pass.Reportf(lit.Pos(), "http.Server without IdleTimeout: idle keep-alive connections are never reclaimed")
	}
}

// isHTTPServer reports whether t is net/http.Server.
func isHTTPServer(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Server" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}
