// Machine-readable finding formats: a stable JSON array for scripting
// and diffing (two runs over the same tree must be byte-identical — a
// determinism test pins this), and SARIF 2.1.0 for CI annotation
// (github/codeql-action/upload-sarif renders each result on the PR
// diff line it names).
package analysis

import (
	"encoding/json"
	"go/token"
	"io"
	"path/filepath"
)

// JSONFinding is one diagnostic in `sddlint -json` output.
type JSONFinding struct {
	File     string    `json:"file"`
	Line     int       `json:"line"`
	Column   int       `json:"column"`
	Analyzer string    `json:"analyzer"`
	Message  string    `json:"message"`
	Fixes    []JSONFix `json:"fixes,omitempty"`
}

// JSONFix is one machine-applicable fix in JSON output.
type JSONFix struct {
	Message string     `json:"message"`
	Edits   []JSONEdit `json:"edits"`
}

// JSONEdit is one text replacement in JSON output. Offsets are
// 1-based line/column positions; End names the first unreplaced
// position.
type JSONEdit struct {
	StartLine int    `json:"start_line"`
	StartCol  int    `json:"start_col"`
	EndLine   int    `json:"end_line"`
	EndCol    int    `json:"end_col"`
	NewText   string `json:"new_text"`
}

// relTo rewrites path relative to base when possible — keeps output
// stable across checkouts and lets CI map findings onto repo paths.
func relTo(base, path string) string {
	if base == "" {
		return path
	}
	if rel, err := filepath.Rel(base, path); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
		return rel
	}
	return path
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// Findings converts diagnostics to their JSON form, with file paths
// relative to base.
func Findings(fset *token.FileSet, base string, diags []Diagnostic) []JSONFinding {
	out := make([]JSONFinding, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		f := JSONFinding{
			File:     relTo(base, pos.Filename),
			Line:     pos.Line,
			Column:   pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		for _, fix := range d.SuggestedFixes {
			jf := JSONFix{Message: fix.Message}
			for _, e := range fix.Edits {
				start := fset.Position(e.Pos)
				end := start
				if e.End != token.NoPos {
					end = fset.Position(e.End)
				}
				jf.Edits = append(jf.Edits, JSONEdit{
					StartLine: start.Line, StartCol: start.Column,
					EndLine: end.Line, EndCol: end.Column,
					NewText: e.NewText,
				})
			}
			f.Fixes = append(f.Fixes, jf)
		}
		out = append(out, f)
	}
	return out
}

// WriteJSON writes the findings as an indented JSON array. The output
// is a pure function of the diagnostics: same tree, same bytes.
func WriteJSON(w io.Writer, fset *token.FileSet, base string, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Findings(fset, base, diags))
}

// SARIF 2.1.0 — the minimal subset GitHub code scanning consumes.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF writes the findings as a SARIF 2.1.0 log with one run;
// every registered analyzer appears as a rule so rule metadata is
// stable whether or not it fired. File URIs are relative to base.
func WriteSARIF(w io.Writer, fset *token.FileSet, base string, analyzers []*Analyzer, diags []Diagnostic) error {
	driver := sarifDriver{Name: "sddlint"}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: []sarifResult{}}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		run.Results = append(run.Results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relTo(base, pos.Filename))},
				Region:           sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
			}}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	})
}
