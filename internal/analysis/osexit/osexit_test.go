package osexit_test

import (
	"testing"

	"sddict/internal/analysis/analysistest"
	"sddict/internal/analysis/osexit"
)

func TestOsexit(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), osexit.Analyzer, "lib", "mainpkg")
}
