// Fixture: process termination from library code.
package lib

import (
	"log"
	"os"
)

func fail(code int) {
	os.Exit(code) // want "os.Exit in library package lib skips deferred cleanup"
}

func fatal(msg string) {
	log.Fatalf("boom: %s", msg) // want "log.Fatal in library package lib exits without cleanup"
}

// Exiting through log.Println is fine.
func report(msg string) {
	log.Println(msg)
}
