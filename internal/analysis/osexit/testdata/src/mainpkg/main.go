// Fixture: package main may exit.
package main

import "os"

func main() {
	os.Exit(2)
}
