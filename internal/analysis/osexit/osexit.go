// Package osexit keeps process termination at the edge: os.Exit and
// log.Fatal* skip deferred cleanup (atomic-write temp files, trace
// flushes, listener shutdown), so only package main and the CLI glue
// in internal/cli may call them. Library code returns errors.
package osexit

import (
	"go/ast"
	"strings"

	"sddict/internal/analysis"
)

// Analyzer is the no-exit-in-libraries checker.
var Analyzer = &analysis.Analyzer{
	Name: "osexit",
	Doc:  "os.Exit and log.Fatal are reserved for main and internal/cli; libraries return errors",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" || strings.HasSuffix(pass.Pkg.Path(), "internal/cli") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case analysis.IsPkgFunc(pass.TypesInfo, call, "os", "Exit"):
				pass.Reportf(call.Pos(), "os.Exit in library package %s skips deferred cleanup; return an error instead", pass.Pkg.Path())
			case analysis.IsPkgFunc(pass.TypesInfo, call, "log", "Fatal"),
				analysis.IsPkgFunc(pass.TypesInfo, call, "log", "Fatalf"),
				analysis.IsPkgFunc(pass.TypesInfo, call, "log", "Fatalln"):
				pass.Reportf(call.Pos(), "log.Fatal in library package %s exits without cleanup; return an error instead", pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
