package analysis

import "fmt"

// Run executes every analyzer over every target package and returns the
// position-sorted diagnostics.
func Run(loader *Loader, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	for _, p := range pkgs {
		for _, a := range analyzers {
			pass := NewPass(a, loader.Fset, p.Files, p.Pkg, p.Info, collect)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, p.ImportPath, err)
			}
		}
	}
	SortDiagnostics(loader.Fset, diags)
	return diags, nil
}
