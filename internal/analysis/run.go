package analysis

import "fmt"

// Result is the outcome of one multichecker run.
type Result struct {
	// Diagnostics are the surviving findings from target packages,
	// position-sorted. Suppressed findings are excluded; malformed
	// //lint:ignore comments are included (analyzer "suppress").
	Diagnostics []Diagnostic
	// Suppressed counts findings silenced by //lint:ignore comments.
	Suppressed int
}

// RunAll executes every analyzer over every loaded package — dependency
// packages first, in the import order the loader preserved, so facts
// exported while analyzing a package are available to its importers —
// and returns the position-sorted diagnostics of the target packages,
// minus //lint:ignore suppressions.
func RunAll(loader *Loader, pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	facts := NewFactStore()
	res := &Result{}
	for _, p := range pkgs {
		var diags []Diagnostic
		collect := func(d Diagnostic) { diags = append(diags, d) }
		for _, a := range analyzers {
			pass := NewPass(a, loader.Fset, p.Files, p.Pkg, p.Info, facts, collect)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, p.ImportPath, err)
			}
		}
		if !p.Target {
			// Dependency-only packages are analyzed for their facts;
			// their findings belong to a run that targets them.
			continue
		}
		sup := CollectSuppressions(loader.Fset, p.Files)
		res.Diagnostics = append(res.Diagnostics, sup.Malformed...)
		for _, d := range diags {
			if sup.Suppressed(loader.Fset, d) {
				res.Suppressed++
				continue
			}
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	SortDiagnostics(loader.Fset, res.Diagnostics)
	return res, nil
}

// Run is RunAll reduced to the diagnostics slice — the original v1
// entry point, kept for callers that don't care about suppression
// counts.
func Run(loader *Loader, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := RunAll(loader, pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}
