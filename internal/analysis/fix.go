package analysis

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"
)

// FixResult describes one file rewritten by ApplyFixes.
type FixResult struct {
	Path    string
	Applied int // edits applied
	Skipped int // edits dropped because they overlapped an earlier edit
}

// ApplyFixes applies every suggested fix carried by diags to the source
// files on disk and returns the per-file results, sorted by path. Edits
// are applied right to left so earlier offsets stay valid; an edit
// overlapping one already applied is skipped rather than corrupting the
// file (the next run offers it again on the reformatted source — the
// applier converges because each application strictly reduces the
// outstanding fixable findings). Rewritten files are gofmt'd before
// write, and write is the caller's seam — pass a wrapper around
// core.AtomicWriteFile so a crash mid-fix never leaves a torn source
// file.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic, write func(path string, data []byte) error) ([]FixResult, error) {
	type edit struct {
		start, end int // byte offsets
		newText    string
	}
	perFile := make(map[string][]edit)
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, te := range fix.Edits {
				file := fset.File(te.Pos)
				if file == nil || (te.End != token.NoPos && fset.File(te.End) != file) {
					return nil, fmt.Errorf("analysis: fix %q has edits outside its file", fix.Message)
				}
				end := te.End
				if end == token.NoPos {
					end = te.Pos
				}
				perFile[file.Name()] = append(perFile[file.Name()], edit{
					start:   file.Offset(te.Pos),
					end:     file.Offset(end),
					newText: te.NewText,
				})
			}
		}
	}

	paths := make([]string, 0, len(perFile))
	for path := range perFile {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	var results []FixResult
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("analysis: reading %s for fixing: %w", path, err)
		}
		edits := perFile[path]
		sort.SliceStable(edits, func(i, j int) bool {
			if edits[i].start != edits[j].start {
				return edits[i].start < edits[j].start
			}
			return edits[i].end < edits[j].end
		})
		res := FixResult{Path: path}
		out := src
		// Apply right to left; drop overlaps with the previously kept
		// (i.e. following) edit.
		lastStart := len(src) + 1
		for i := len(edits) - 1; i >= 0; i-- {
			e := edits[i]
			if e.start < 0 || e.end > len(src) || e.end < e.start || e.end > lastStart {
				res.Skipped++
				continue
			}
			out = append(out[:e.start], append([]byte(e.newText), out[e.end:]...)...)
			lastStart = e.start
			res.Applied++
		}
		if res.Applied == 0 {
			continue
		}
		formatted, err := format.Source(out)
		if err != nil {
			return nil, fmt.Errorf("analysis: fixed %s does not parse (fix bug): %w", path, err)
		}
		if err := write(path, formatted); err != nil {
			return nil, fmt.Errorf("analysis: writing fixed %s: %w", path, err)
		}
		results = append(results, res)
	}
	return results, nil
}
