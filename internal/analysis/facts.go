package analysis

import (
	"go/types"
	"reflect"
)

// Fact is a typed datum an analyzer attaches to a types.Object or a
// types.Package while analyzing one package, to be consumed when the
// same analyzer later runs over a package that imports it — the
// mechanism behind cross-package reasoning ("this helper closes its
// argument", "this decoder returns an untrusted length"). The marker
// method keeps arbitrary values out of the store; fact types are
// conventionally unexported structs with exported fields, one or more
// per analyzer, declared next to the analyzer that owns them.
//
// Facts mirror golang.org/x/tools/go/analysis facts with one deliberate
// simplification: this runner analyzes a whole module in one process in
// dependency order, so facts live in memory for the life of the run and
// never need gob serialization.
type Fact interface {
	AFact()
}

// factKey identifies one stored fact: the owning analyzer, the carrier
// (an object, or nil for package facts plus the package path), and the
// concrete fact type, so one analyzer can attach several fact kinds to
// the same object.
type factKey struct {
	analyzer string
	obj      types.Object
	pkgPath  string
	t        reflect.Type
}

// FactStore holds every fact exported during one Run, shared by all
// passes. The zero value is not usable; call NewFactStore.
type FactStore struct {
	m map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]Fact)}
}

func (s *FactStore) key(analyzer string, obj types.Object, pkg *types.Package, fact Fact) factKey {
	k := factKey{analyzer: analyzer, obj: obj, t: reflect.TypeOf(fact)}
	if pkg != nil {
		k.pkgPath = pkg.Path()
	}
	return k
}

// ExportObjectFact records fact for obj on behalf of the named
// analyzer. The stored value is the pointer itself; callers must not
// mutate a fact after exporting it.
func (s *FactStore) ExportObjectFact(analyzer string, obj types.Object, fact Fact) {
	if obj == nil {
		return
	}
	s.m[s.key(analyzer, obj, nil, fact)] = fact
}

// ImportObjectFact copies the fact of fact's concrete type previously
// exported for obj into fact, reporting whether one was found. fact
// must be a non-nil pointer, as with ExportObjectFact.
func (s *FactStore) ImportObjectFact(analyzer string, obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	stored, ok := s.m[s.key(analyzer, obj, nil, fact)]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// ExportPackageFact records fact for the package pkg.
func (s *FactStore) ExportPackageFact(analyzer string, pkg *types.Package, fact Fact) {
	if pkg == nil {
		return
	}
	s.m[s.key(analyzer, nil, pkg, fact)] = fact
}

// ImportPackageFact copies pkg's fact of fact's concrete type into
// fact, reporting whether one was found.
func (s *FactStore) ImportPackageFact(analyzer string, pkg *types.Package, fact Fact) bool {
	if pkg == nil {
		return false
	}
	stored, ok := s.m[s.key(analyzer, nil, pkg, fact)]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}
