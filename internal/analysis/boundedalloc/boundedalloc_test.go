package boundedalloc_test

import (
	"testing"

	"sddict/internal/analysis/analysistest"
	"sddict/internal/analysis/boundedalloc"
)

func TestBasic(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), boundedalloc.Analyzer, "basic")
}

// TestCrossPackageFacts analyzes the decoder package first, then a
// consumer whose only taint sources are the decoder's exported facts.
func TestCrossPackageFacts(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), boundedalloc.Analyzer, "a", "b")
}

func TestSuggestedFixes(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, analysistest.TestData(), boundedalloc.Analyzer, "fix")
}
