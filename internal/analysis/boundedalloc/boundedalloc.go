// Package boundedalloc flags allocations sized by untrusted input: a
// `make([]T, n)` or `bytes.Buffer.Grow(n)` where n flows from a decoded
// integer (encoding/binary, strconv) that was never compared against a
// bound. The dictionary reader consumes attacker-shapeable files; a
// 64-bit count read straight into make() turns a short header into an
// OOM kill. internal/core.ReadCompiled's explicit `n > limit` check is
// the pattern this analyzer makes mandatory.
//
// The taint analysis is intra-procedural and lexical: a variable
// assigned from a source is tainted; arithmetic propagates taint; a
// comparison mentioning the variable (an explicit bound check) or a
// constant mask/mod clears it. Cross-package flow rides the facts
// layer: a function returning a tainted value exports an UntrustedFact,
// and its call sites treat that result as a source.
package boundedalloc

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"sort"

	"sddict/internal/analysis"
)

// UntrustedFact marks a function whose results (by index) carry a
// decoded integer that the function itself never bounded.
type UntrustedFact struct {
	Results []int
}

// AFact marks UntrustedFact as a fact type.
func (*UntrustedFact) AFact() {}

// Analyzer is the bounded-allocation checker.
var Analyzer = &analysis.Analyzer{
	Name:      "boundedalloc",
	Doc:       "allocations sized by decoded input must be bounded before make/Grow",
	Run:       run,
	FactTypes: []analysis.Fact{(*UntrustedFact)(nil)},
}

func run(pass *analysis.Pass) error {
	exportFacts(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w := newWalker(pass, true)
				w.stmts(fd.Body.List)
			}
		}
	}
	return nil
}

// walker carries the taint state through one function body in source
// order. taint maps a variable to a human description of its source.
type walker struct {
	pass   *analysis.Pass
	report bool
	taint  map[types.Object]string
	// returned collects, per result index, whether any return statement
	// handed back a tainted value (used by the fact-export phase).
	returned map[int]bool
}

func newWalker(pass *analysis.Pass, report bool) *walker {
	return &walker{pass: pass, report: report, taint: map[types.Object]string{}, returned: map[int]bool{}}
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.checkSinks(s)
		w.assign(s.Lhs, s.Rhs)
	case *ast.DeclStmt:
		w.checkSinks(s)
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					w.assign(lhs, vs.Values)
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		// A comparison against the tainted value is the bound check
		// this analyzer asks for; it dominates the branch bodies and —
		// lexically — everything after.
		w.sanitize(s.Cond)
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.sanitize(s.Cond)
		}
		w.stmts(s.Body.List)
	case *ast.RangeStmt:
		w.checkSinks(s.X)
		w.stmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.sanitize(s.Tag)
		}
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				for _, e := range c.List {
					w.sanitize(e)
				}
				w.stmts(c.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				w.stmts(c.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CommClause); ok {
				w.stmts(c.Body)
			}
		}
	case *ast.ReturnStmt:
		w.checkSinks(s)
		for i, res := range s.Results {
			if _, tainted := w.taintedExpr(res); tainted {
				w.returned[i] = true
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.GoStmt:
		w.checkSinks(s)
	case *ast.DeferStmt:
		w.checkSinks(s)
	case *ast.ExprStmt:
		w.checkSinks(s)
	case *ast.SendStmt:
		w.checkSinks(s)
	}
}

// assign propagates taint through an assignment: single-value form
// taints each LHS from its RHS; the multi-result form (n, err := src())
// taints the LHS positions named by the source or fact.
func (w *walker) assign(lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			if desc, results := w.taintedCall(call); results != nil {
				for _, i := range results {
					if i < len(lhs) {
						w.set(lhs[i], desc)
					}
				}
			}
		}
		return
	}
	for i := range lhs {
		if i >= len(rhs) {
			break
		}
		if desc, tainted := w.taintedExpr(rhs[i]); tainted {
			w.set(lhs[i], desc)
		} else {
			w.clear(lhs[i])
		}
	}
}

func (w *walker) set(e ast.Expr, desc string) {
	if obj := w.lhsObj(e); obj != nil {
		w.taint[obj] = desc
	}
}

func (w *walker) clear(e ast.Expr) {
	if obj := w.lhsObj(e); obj != nil {
		delete(w.taint, obj)
	}
}

func (w *walker) lhsObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return w.pass.TypesInfo.Uses[id]
}

// sanitize clears the taint of every variable that appears in a
// comparison inside e — the developer compared it against something, so
// it is considered bounded from here on.
func (w *walker) sanitize(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
			for _, side := range []ast.Expr{be.X, be.Y} {
				ast.Inspect(side, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
							delete(w.taint, obj)
						}
					}
					return true
				})
			}
		}
		return true
	})
}

// checkSinks reports every allocation inside n whose size argument is
// tainted right now.
func (w *walker) checkSinks(n ast.Node) {
	if !w.report {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isBuiltin(w.pass, id, "make") && len(call.Args) >= 2 {
			// Builtin make: args after the type are len and cap.
			for _, arg := range call.Args[1:] {
				if desc, tainted := w.taintedExpr(arg); tainted {
					w.reportSink(call, arg, "make", desc)
				}
			}
		}
		if callee := analysis.CalleeFunc(w.pass.TypesInfo, call); callee != nil && callee.Name() == "Grow" &&
			callee.Pkg() != nil && callee.Pkg().Path() == "bytes" && len(call.Args) == 1 {
			if desc, tainted := w.taintedExpr(call.Args[0]); tainted {
				w.reportSink(call, call.Args[0], "Buffer.Grow", desc)
			}
		}
		return true
	})
}

func (w *walker) reportSink(call *ast.CallExpr, arg ast.Expr, sink, desc string) {
	d := analysis.Diagnostic{
		Pos: call.Pos(),
		Message: sink + " sized by `" + exprString(w.pass.Fset, arg) + "` from " + desc +
			" without a bound check",
		SuggestedFixes: []analysis.SuggestedFix{guardFix(w.pass, call, arg)},
	}
	w.pass.Report(d)
}

// guardFix inserts an explicit bound check above the statement holding
// the allocation. The limit and failure mode are starting points for
// the developer; what matters is that the comparison exists.
func guardFix(pass *analysis.Pass, call *ast.CallExpr, arg ast.Expr) analysis.SuggestedFix {
	stmt := enclosingStmt(pass, call)
	at := stmt.Pos()
	size := exprString(pass.Fset, arg)
	return analysis.SuggestedFix{
		Message: "bound " + size + " before allocating",
		Edits: []analysis.TextEdit{{
			Pos:     at,
			End:     at,
			NewText: "if " + size + " > 1<<20 {\npanic(\"allocation size exceeds bound\")\n}\n",
		}},
	}
}

// enclosingStmt climbs to the outermost statement containing n so the
// guard lands on its own line.
func enclosingStmt(pass *analysis.Pass, n ast.Node) ast.Node {
	cur := n
	for {
		parent := pass.Parent(cur)
		if parent == nil {
			return cur
		}
		switch parent.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			return cur
		}
		cur = parent
	}
}

func isBuiltin(pass *analysis.Pass, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// taintedExpr reports whether e evaluates to a tainted integer and
// describes its source.
func (w *walker) taintedExpr(e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		desc, ok := w.taint[w.pass.TypesInfo.Uses[e]]
		return desc, ok
	case *ast.CallExpr:
		if desc, results := w.taintedCall(e); results != nil {
			for _, i := range results {
				if i == 0 {
					return desc, true
				}
			}
			return "", false
		}
		// Conversion: int(x) keeps x's taint.
		if tv, ok := w.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return w.taintedExpr(e.Args[0])
		}
		// Builtin min/max bound the value by construction.
		return "", false
	case *ast.BinaryExpr:
		switch e.Op {
		case token.AND, token.REM:
			// Masking or mod by a constant bounds the result.
			if isConst(w.pass, e.X) || isConst(w.pass, e.Y) {
				return "", false
			}
		case token.ADD, token.SUB, token.MUL, token.SHL, token.SHR, token.OR, token.XOR, token.QUO:
			// Arithmetic propagates taint.
		default:
			return "", false
		}
		if desc, ok := w.taintedExpr(e.X); ok {
			return desc, true
		}
		return w.taintedExpr(e.Y)
	case *ast.UnaryExpr:
		return w.taintedExpr(e.X)
	}
	return "", false
}

// taintedCall reports whether call is a taint source and which result
// indices are untrusted; results is nil for a non-source call.
func (w *walker) taintedCall(call *ast.CallExpr) (string, []int) {
	info := w.pass.TypesInfo
	for _, src := range [...]struct {
		pkg, name string
	}{
		{"encoding/binary", "ReadUvarint"},
		{"encoding/binary", "ReadVarint"},
		{"strconv", "Atoi"},
		{"strconv", "ParseInt"},
		{"strconv", "ParseUint"},
	} {
		if analysis.IsPkgFunc(info, call, src.pkg, src.name) {
			return shortPkg(src.pkg) + "." + src.name, []int{0}
		}
	}
	// binary.BigEndian.Uint16/32/64 and the LittleEndian twins are
	// methods, so they need the callee's package rather than IsPkgFunc.
	if callee := analysis.CalleeFunc(info, call); callee != nil && callee.Pkg() != nil {
		if callee.Pkg().Path() == "encoding/binary" &&
			(callee.Name() == "Uint16" || callee.Name() == "Uint32" || callee.Name() == "Uint64") {
			return "binary." + callee.Name(), []int{0}
		}
		var fact UntrustedFact
		if w.pass.ImportObjectFact(callee, &fact) {
			return callee.Pkg().Name() + "." + callee.Name(), fact.Results
		}
	}
	return "", nil
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() != constant.Unknown
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "n"
	}
	return buf.String()
}

func shortPkg(path string) string {
	switch path {
	case "encoding/binary":
		return "binary"
	default:
		return path
	}
}

// exportFacts walks every function without reporting, to a fixed
// point, and exports an UntrustedFact for each function that returns a
// tainted value it never bounded.
func exportFacts(pass *analysis.Pass) {
	for changed := true; changed; {
		changed = false
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				w := newWalker(pass, false)
				w.stmts(fd.Body.List)
				if len(w.returned) == 0 {
					continue
				}
				var results []int
				for i := range w.returned {
					results = append(results, i)
				}
				sort.Ints(results)
				var have UntrustedFact
				pass.ImportObjectFact(fn, &have)
				if len(results) > len(have.Results) {
					pass.ExportObjectFact(fn, &UntrustedFact{Results: results})
					changed = true
				}
			}
		}
	}
}

