// Fixture: the fact-consuming side — package b never touches
// encoding/binary; taint arrives through package a's exported decoders.
package b

import "a"

func alloc(header []byte) []byte {
	n := a.Count(header)
	return make([]byte, n) // want "make sized by `n` from a.Count without a bound check"
}

// SafeCount carried no fact: its result is trusted.
func allocSafe(header []byte) []byte {
	n := a.SafeCount(header)
	return make([]byte, n)
}

// Bounding locally clears the cross-package taint.
func allocBounded(header []byte) []byte {
	n := a.Count(header)
	if n > 1<<16 {
		n = 1 << 16
	}
	return make([]byte, n)
}

// The transitive decoder is just as untrusted.
func allocDerived(header []byte) []byte {
	return make([]byte, a.Derived(header)) // want "make sized by .* from a.Derived without a bound check"
}
