// Fixture: boundedalloc's insert-guard suggested fix, checked against
// fix.go.golden and re-analyzed for idempotence.
package fix

import (
	"bytes"
	"encoding/binary"
	"strconv"
)

func decodeBody(header []byte) []byte {
	n := binary.BigEndian.Uint32(header)
	buf := make([]byte, n) // want "make sized by `n` from binary.Uint32 without a bound check"
	return buf
}

func growBuf(buf *bytes.Buffer, s string) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return
	}
	buf.Grow(n) // want "Buffer.Grow sized by `n` from strconv.Atoi without a bound check"
}
