// Fixture: the fact-producing side — decoders that hand back untrusted
// sizes export an UntrustedFact; decoders that bound first do not.
package a

import "encoding/binary"

// Count decodes a record count and returns it unbounded: callers must
// bound it before allocating.
func Count(header []byte) uint32 {
	return binary.BigEndian.Uint32(header)
}

// SafeCount clamps before returning: no fact, callers may trust it.
func SafeCount(header []byte) uint32 {
	n := binary.BigEndian.Uint32(header)
	if n > 1<<12 {
		n = 1 << 12
	}
	return n
}

// Derived stays untrusted through a same-package helper chain.
func Derived(header []byte) uint32 {
	return Count(header) * 8
}
