// Fixture: intra-procedural taint from decoded integers to allocation
// sites, and the bound checks that clear it.
package basic

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"strconv"
)

const limit = 1 << 16

var errTooBig = errors.New("too big")

// Bounded before allocation: clean.
func bounded(header []byte) ([]byte, error) {
	n := binary.BigEndian.Uint64(header)
	if n > limit {
		return nil, errTooBig
	}
	return make([]byte, n), nil
}

// Decoded straight into make: flagged.
func unbounded(header []byte) []byte {
	n := binary.BigEndian.Uint32(header)
	return make([]byte, n) // want "make sized by `n` from binary.Uint32 without a bound check"
}

// The cap argument is a size too.
func unboundedCap(header []byte) []int {
	n := binary.LittleEndian.Uint16(header)
	return make([]int, 0, n) // want "make sized by `n` from binary.Uint16 without a bound check"
}

// Arithmetic propagates taint.
func scaled(header []byte) []byte {
	n := binary.BigEndian.Uint32(header)
	return make([]byte, int(n)*8) // want "make sized by .* from binary.Uint32 without a bound check"
}

// Masking with a constant is a bound.
func masked(header []byte) []byte {
	n := binary.BigEndian.Uint64(header)
	return make([]byte, n&0xffff)
}

// The min builtin bounds by construction.
func viaMin(header []byte) []byte {
	n := binary.BigEndian.Uint64(header)
	return make([]byte, min(n, limit))
}

// Varint readers taint their first result.
func varint(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil // want "make sized by `n` from binary.ReadUvarint without a bound check"
}

// strconv results are untrusted until compared.
func fromString(s string) []byte {
	n, err := strconv.Atoi(s)
	if err != nil {
		return nil
	}
	return make([]byte, n) // want "make sized by `n` from strconv.Atoi without a bound check"
}

// Buffer.Grow is a sink like make.
func grow(buf *bytes.Buffer, s string) {
	n, _ := strconv.Atoi(s)
	buf.Grow(n) // want "Buffer.Grow sized by `n` from strconv.Atoi without a bound check"
}

// Comparing against anything counts as the bound check.
func comparedLater(s string, have int) []byte {
	n, _ := strconv.Atoi(s)
	if n > have {
		return nil
	}
	return make([]byte, n)
}

// Reassignment from a trusted value clears the taint.
func reassigned(s string) []byte {
	n, _ := strconv.Atoi(s)
	n = 16
	return make([]byte, n)
}
