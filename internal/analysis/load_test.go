package analysis_test

import (
	"go/token"
	"strings"
	"testing"

	"sddict/internal/analysis"
)

// TestLoadModule exercises the go-list-backed loader over this module's
// own source: every target package must arrive parsed and fully
// type-checked.
func TestLoadModule(t *testing.T) {
	loader := analysis.NewLoader()
	pkgs, err := loader.Load(".", "sddict/internal/analysis", "sddict/internal/core")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	byPath := map[string]*analysis.Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	for _, want := range []string{"sddict/internal/analysis", "sddict/internal/core"} {
		p := byPath[want]
		if p == nil {
			t.Fatalf("Load did not return %s (got %d packages)", want, len(pkgs))
		}
		if !p.Target {
			t.Errorf("%s not marked as a target", want)
		}
		if len(p.Files) == 0 || p.Pkg == nil || p.Info == nil {
			t.Errorf("%s loaded without syntax or types", want)
		}
	}
	// Module dependencies come back analyzable (bodies type-checked,
	// so fact-producing analyzers can look inside them) but flagged as
	// non-targets; the standard library is never returned.
	dep := byPath["sddict/internal/logic"]
	if dep == nil {
		t.Fatalf("module dependency package not returned for fact analysis")
	}
	if dep.Target {
		t.Errorf("dependency package marked as a target")
	}
	if len(dep.Files) == 0 || dep.Pkg == nil {
		t.Errorf("dependency package loaded without syntax or types")
	}
	if _, ok := byPath["fmt"]; ok {
		t.Errorf("standard library package returned for analysis")
	}
	// Dependency order: an imported package must precede its importer,
	// so facts flow forward.
	idx := map[string]int{}
	for i, p := range pkgs {
		idx[p.ImportPath] = i
	}
	if idx["sddict/internal/logic"] > idx["sddict/internal/core"] {
		t.Errorf("dependency sddict/internal/logic listed after its importer sddict/internal/core")
	}
}

// TestRunReportsSortedDiagnostics checks the multichecker plumbing with a
// trivial analyzer that flags every file.
func TestRunReportsSortedDiagnostics(t *testing.T) {
	flagFiles := &analysis.Analyzer{
		Name: "flagfiles",
		Doc:  "test analyzer: one diagnostic per file",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				pass.Reportf(f.Pos(), "file in %s", pass.Pkg.Path())
			}
			return nil
		},
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.Load(".", "sddict/internal/analysis/errwrap")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := analysis.Run(loader, pkgs, []*analysis.Analyzer{flagFiles})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics from the flag-everything analyzer")
	}
	var prev token.Position
	for i, d := range diags {
		if d.Analyzer != "flagfiles" {
			t.Errorf("diagnostic %d has analyzer %q", i, d.Analyzer)
		}
		pos := loader.Fset.Position(d.Pos)
		if !strings.HasSuffix(pos.Filename, ".go") {
			t.Errorf("diagnostic %d at non-Go position %s", i, pos)
		}
		if i > 0 && pos.Filename < prev.Filename {
			t.Errorf("diagnostics not sorted by file: %s after %s", pos.Filename, prev.Filename)
		}
		prev = pos
	}
}
