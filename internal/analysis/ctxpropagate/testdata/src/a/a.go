// Fixture for the ctxpropagate analyzer: compat wrappers, swallowed
// cancellation, and the *Ctx signature contract.
package a

import "context"

// BuildCtx is a cancellable long-running API.
func BuildCtx(ctx context.Context, n int) int {
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return i
		}
	}
	return n
}

func processCtx(ctx context.Context) int {
	return BuildCtx(ctx, 1) // ok: forwards the caller's context
}

// Build is the sanctioned non-Ctx compat wrapper for BuildCtx.
func Build(n int) int {
	return BuildCtx(context.Background(), n) // ok: F -> FCtx compat wrapper
}

// Search swallows cancellation for every caller above it.
func Search(n int) int {
	return BuildCtx(context.Background(), n) // want `context.Background passed to BuildCtx` `exported Search calls BuildCtx but accepts no context`
}

func helper(n int) int {
	return BuildCtx(context.Background(), n) // want `context.Background passed to BuildCtx`
}

func Todo(ctx context.Context) int {
	return processCtx(context.TODO()) // want `context.TODO in library code`
}

// RunCtx breaks the naming contract: the Ctx suffix promises a context
// parameter.
func RunCtx(n int) int { // want `exported RunCtx does not take a context.Context`
	return n
}

// Stats only calls the compat wrapper, which is fine at any layer.
func Stats(n int) int {
	return Build(n)
}

// Sweep accepts a context in a non-leading position; the propagation rule
// is satisfied (only *Ctx functions promise a leading context).
func Sweep(n int, ctx context.Context) int {
	return BuildCtx(ctx, n)
}
