// Package ctxpropagate enforces the cancellation contract from PR 1:
// every long-running layer threads a caller-supplied context.Context, and
// fresh root contexts are minted only at the process boundary (package
// main, tests) or inside the designated non-Ctx compat wrappers.
//
// A compat wrapper is the one sanctioned shape for a context-free API:
// an exported function F whose body forwards to F+"Ctx" with
// context.Background() — e.g. Build calling BuildCtx. Anything else that
// hands context.Background()/context.TODO() to a *Ctx API inside the
// library swallows cancellation for every caller above it.
package ctxpropagate

import (
	"go/ast"
	"go/types"
	"strings"

	"sddict/internal/analysis"
)

// Analyzer is the context-propagation invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpropagate",
	Doc:  "require caller-supplied contexts in the long-running packages; context.Background only in main, tests, and F→FCtx compat wrappers",
	Run:  run,
}

// scope lists the long-running library packages (the layers PR 1 threaded
// contexts through). Analysistest fixture packages are always in scope.
var scope = map[string]bool{
	"sddict/internal/core":       true,
	"sddict/internal/atpg":       true,
	"sddict/internal/sim":        true,
	"sddict/internal/diagnose":   true,
	"sddict/internal/experiment": true,
	"sddict/internal/resp":       true,
}

func inScope(path string) bool {
	return scope[path] || !strings.HasPrefix(path, "sddict")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) || pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkRootContextArg(pass, n)
			case *ast.FuncDecl:
				checkCtxSignature(pass, n)
				checkExportedCallsCtx(pass, n)
			}
			return true
		})
	}
	return nil
}

// isRootContextCall reports whether e is context.Background() or
// context.TODO().
func isRootContextCall(info *types.Info, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	for _, name := range [...]string{"Background", "TODO"} {
		if analysis.IsPkgFunc(info, call, "context", name) {
			return name, true
		}
	}
	return "", false
}

// isCompatWrapper reports whether fd is the sanctioned context-free
// wrapper for callee: an exported F forwarding to F+"Ctx".
func isCompatWrapper(fd *ast.FuncDecl, calleeName string) bool {
	return fd != nil && fd.Name.IsExported() && fd.Name.Name+"Ctx" == calleeName
}

// checkRootContextArg flags *Ctx calls fed a freshly minted root context
// outside a compat wrapper, and any context.TODO in library code.
func checkRootContextArg(pass *analysis.Pass, call *ast.CallExpr) {
	callee := analysis.CalleeName(call)
	for _, arg := range call.Args {
		name, ok := isRootContextCall(pass.TypesInfo, arg)
		if !ok {
			continue
		}
		if name == "TODO" {
			pass.Reportf(arg.Pos(), "context.TODO in library code; thread the caller's context instead")
			continue
		}
		if !strings.HasSuffix(callee, "Ctx") {
			continue
		}
		if isCompatWrapper(pass.EnclosingFunc(call), callee) {
			continue
		}
		pass.Reportf(arg.Pos(), "context.Background passed to %s swallows cancellation; accept and forward the caller's context (only F→FCtx compat wrappers may mint a root context)", callee)
	}
}

// checkCtxSignature enforces the *Ctx naming contract: an exported FooCtx
// takes a context.Context first.
func checkCtxSignature(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || !strings.HasSuffix(fd.Name.Name, "Ctx") {
		return
	}
	params := fd.Type.Params
	if params != nil && len(params.List) > 0 {
		if first := firstParamType(pass, params); first != nil && isContextType(first) {
			return
		}
	}
	pass.Reportf(fd.Name.Pos(), "exported %s does not take a context.Context as its first parameter; the Ctx suffix promises one", fd.Name.Name)
}

// checkExportedCallsCtx flags exported context-free functions that call
// into cancellable (*Ctx) APIs without being a designated compat wrapper:
// they sit above a long-running layer but cannot forward cancellation.
func checkExportedCallsCtx(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Body == nil || strings.HasSuffix(fd.Name.Name, "Ctx") {
		return
	}
	if acceptsContext(pass, fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeName(call)
		if !strings.HasSuffix(callee, "Ctx") || callee == "Ctx" {
			return true
		}
		if isCompatWrapper(fd, callee) {
			return true
		}
		pass.Reportf(call.Pos(), "exported %s calls %s but accepts no context.Context; long-running layers must thread the caller's context (or be an F→FCtx compat wrapper)", fd.Name.Name, callee)
		return true
	})
}

func acceptsContext(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if t := pass.TypesInfo.Types[field.Type].Type; t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

func firstParamType(pass *analysis.Pass, params *ast.FieldList) types.Type {
	return pass.TypesInfo.Types[params.List[0].Type].Type
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
