package ctxpropagate_test

import (
	"testing"

	"sddict/internal/analysis/analysistest"
	"sddict/internal/analysis/ctxpropagate"
)

func TestCtxPropagate(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxpropagate.Analyzer, "a")
}
