package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"sddict/internal/analysis"
)

const suppressSrc = `package p

func trailing() {
	bad() //lint:ignore demo the call is intentional here
}

func standalone() {
	//lint:ignore demo,other covered by integration test
	bad()
}

func wildcard() {
	bad() //lint:ignore all vendored section
}

func missingReason() {
	bad() //lint:ignore solo
}

func standaloneReach() {
	//lint:ignore demo only the next line
	bad()
	bad()
}

func bad() {}
`

// lineOf returns the 1-based line of the first source line containing
// marker.
func lineOf(t *testing.T, marker string) int {
	t.Helper()
	for i, l := range strings.Split(suppressSrc, "\n") {
		if strings.Contains(l, marker) {
			return i + 1
		}
	}
	t.Fatalf("marker %q not in suppressSrc", marker)
	return 0
}

func TestSuppressions(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sup := analysis.CollectSuppressions(fset, []*ast.File{f})

	tf := fset.File(f.Pos())
	diagAt := func(line int, analyzer string) analysis.Diagnostic {
		return analysis.Diagnostic{Pos: tf.LineStart(line), Analyzer: analyzer, Message: "x"}
	}

	cases := []struct {
		name     string
		line     int
		analyzer string
		want     bool
	}{
		{"trailing suppresses its line", lineOf(t, "intentional"), "demo", true},
		{"trailing does not suppress other analyzers", lineOf(t, "intentional"), "other", false},
		{"standalone suppresses the next line", lineOf(t, "covered by") + 1, "demo", true},
		{"standalone lists several analyzers", lineOf(t, "covered by") + 1, "other", true},
		{"all matches any analyzer", lineOf(t, "vendored"), "whatever", true},
		{"malformed comment suppresses nothing", lineOf(t, "solo"), "solo", false},
		{"standalone reaches one line only", lineOf(t, "only the next line") + 2, "demo", false},
		{"trailing does not reach the next line", lineOf(t, "vendored") + 1, "demo", false},
	}
	for _, tc := range cases {
		if tc.line <= 0 || tc.line > tf.LineCount() {
			t.Fatalf("%s: bad line %d", tc.name, tc.line)
		}
		if got := sup.Suppressed(fset, diagAt(tc.line, tc.analyzer)); got != tc.want {
			t.Errorf("%s: Suppressed(line %d, %s) = %v, want %v", tc.name, tc.line, tc.analyzer, got, tc.want)
		}
	}

	if len(sup.Malformed) != 1 {
		t.Fatalf("Malformed = %d comments, want 1", len(sup.Malformed))
	}
	m := sup.Malformed[0]
	if m.Analyzer != "suppress" || !strings.Contains(m.Message, "reason") {
		t.Errorf("malformed diagnostic = %q (%s), want analyzer suppress mentioning the reason", m.Message, m.Analyzer)
	}
	// A suppression never silences the malformed-suppression report.
	if sup.Suppressed(fset, m) {
		t.Error("malformed //lint:ignore suppressed itself")
	}
}
