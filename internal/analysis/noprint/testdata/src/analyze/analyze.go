// Fixture mirroring internal/obs/analyze: a post-run analysis package
// is a library — it renders reports onto caller-supplied io.Writers
// (legal) and must never narrate to stdout/stderr itself, even though
// its whole job is producing human-readable output.
package analyze

import (
	"fmt"
	"io"
	"os"
)

// run is a stand-in for the analyzed trace.
type run struct {
	events int
	phases map[string]int64
}

// errWriter is the sticky-error rendering helper the real package uses;
// every printf goes to the writer the caller handed in.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

// writeText is the sanctioned shape: the caller owns the destination.
func (r *run) writeText(w io.Writer) error {
	ew := &errWriter{w: w}
	ew.printf("trace: %d events\n", r.events)
	for name, ms := range r.phases {
		ew.printf("  %-16s %dms\n", name, ms)
	}
	return ew.err
}

// narrate is everything the analysis layer must not do: report findings
// by printing them instead of returning them.
func (r *run) narrate() {
	fmt.Printf("analyzed %d events\n", r.events)         // want `fmt.Printf prints to stdout`
	fmt.Println("analysis complete")                     // want `fmt.Println prints to stdout`
	fmt.Fprintf(os.Stderr, "warning: trace truncated\n") // want `fmt.Fprintf to os.Stderr`
	fmt.Fprintln(os.Stdout, "phases:", len(r.phases))    // want `fmt.Fprintln to os.Stdout`
	println("debug: events =", r.events)                 // want `built-in println writes to stderr`
}

// summarize builds strings without touching any stream.
func (r *run) summarize() string {
	return fmt.Sprintf("%d events, %d phases", r.events, len(r.phases))
}
