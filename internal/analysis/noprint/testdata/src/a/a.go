// Fixture for the noprint analyzer: ad-hoc printing from a library
// package.
package a

import (
	"fmt"
	"io"
	"log"
	"os"
)

func narrate(n int) {
	fmt.Println("progress:", n)               // want `fmt.Println prints to stdout`
	fmt.Printf("done %d\n", n)                // want `fmt.Printf prints to stdout`
	fmt.Print(n)                              // want `fmt.Print prints to stdout`
	fmt.Fprintf(os.Stderr, "warn: %d\n", n)   // want `fmt.Fprintf to os.Stderr`
	fmt.Fprintln(os.Stdout, "result:", n)     // want `fmt.Fprintln to os.Stdout`
	fmt.Fprint((os.Stderr), "parenthesized")  // want `fmt.Fprint to os.Stderr`
	log.Printf("restart %d", n)               // want `log.Printf in a library package`
	log.Println("sweep done")                 // want `log.Println in a library package`
	println("debug", n)                       // want `built-in println writes to stderr`
	print("debug")                            // want `built-in print writes to stderr`
}

// render writes to a caller-supplied writer: the sanctioned pattern for
// library-side report rendering.
func render(w io.Writer, n int) {
	fmt.Fprintf(w, "rows: %d\n", n) // ok: caller owns the destination
	fmt.Fprintln(w, "done")         // ok
}

// format builds strings without writing anywhere.
func format(n int) string {
	return fmt.Sprintf("%d rows", n) // ok: no output stream involved
}

// printLike is a user-defined function shadowing nothing; calling it must
// not be confused with the built-in.
func printLike(s string) string { return s }

func usesPrintLike() string { return printLike("x") }
