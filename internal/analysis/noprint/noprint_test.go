package noprint_test

import (
	"testing"

	"sddict/internal/analysis/analysistest"
	"sddict/internal/analysis/noprint"
)

func TestNoPrint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), noprint.Analyzer, "a")
}

// TestNoPrintAnalyze pins the invariant for analysis-layer packages like
// internal/obs/analyze: rendering through a caller-supplied io.Writer
// (the errWriter pattern) is legal, while narrating results to
// stdout/stderr is flagged — a report generator is still a library.
func TestNoPrintAnalyze(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), noprint.Analyzer, "analyze")
}
