package noprint_test

import (
	"testing"

	"sddict/internal/analysis/analysistest"
	"sddict/internal/analysis/noprint"
)

func TestNoPrint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), noprint.Analyzer, "a")
}
