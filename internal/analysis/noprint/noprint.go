// Package noprint keeps ad-hoc printing out of the library packages.
// All user-facing output belongs to the cmd layer and the observability
// sinks in internal/obs (progress lines, traces, metrics reports) — a
// stray fmt.Println deep in the search not only pollutes command output,
// it bypasses the determinism contract that observation happens only at
// ordered fold points (DESIGN.md §10).
//
// Flagged in library packages (sddict/internal/... except internal/obs
// and internal/cli):
//
//   - fmt.Print / fmt.Printf / fmt.Println (always write to stdout),
//   - fmt.Fprint* whose writer argument is syntactically os.Stdout or
//     os.Stderr (Fprint* to a caller-supplied io.Writer is fine — that
//     is how internal/report and internal/bench render results),
//   - any function from the log package (the repo has no logger; the
//     trace is the structured event channel),
//   - the print / println built-ins.
package noprint

import (
	"go/ast"
	"go/types"
	"strings"

	"sddict/internal/analysis"
)

// Analyzer is the no-ad-hoc-printing checker.
var Analyzer = &analysis.Analyzer{
	Name: "noprint",
	Doc:  "forbid fmt printing to stdout/stderr, log.*, and print built-ins in library packages outside internal/obs and internal/cli",
	Run:  run,
}

// inScope covers the library packages. The cmd layer owns its stdout;
// internal/obs and internal/cli are the sanctioned output sinks.
// Fixture packages (outside the module) are always in scope so the
// analyzer's own tests can exercise every diagnostic.
func inScope(path string) bool {
	switch path {
	case "sddict/internal/obs", "sddict/internal/cli":
		return false
	}
	return strings.HasPrefix(path, "sddict/internal/") ||
		!strings.HasPrefix(path, "sddict")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if name, ok := builtinPrint(pass.TypesInfo, call); ok {
		pass.Reportf(call.Pos(), "built-in %s writes to stderr; route output through internal/obs or return it to the caller", name)
		return
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "log":
		pass.Reportf(call.Pos(), "log.%s in a library package; use the obs trace for structured events or return an error", fn.Name())
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println":
			pass.Reportf(call.Pos(), "fmt.%s prints to stdout from a library package; only the cmd layer owns stdout", fn.Name())
		case "Fprint", "Fprintf", "Fprintln":
			if std := stdStreamArg(pass.TypesInfo, call); std != "" {
				pass.Reportf(call.Pos(), "fmt.%s to os.%s from a library package; write to a caller-supplied io.Writer instead", fn.Name(), std)
			}
		}
	}
}

// builtinPrint reports whether call invokes the print or println
// built-in (not a user-defined function of the same name).
func builtinPrint(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return "", false
	}
	if id.Name == "print" || id.Name == "println" {
		return id.Name, true
	}
	return "", false
}

// stdStreamArg returns "Stdout" or "Stderr" when the call's first
// argument is that os stream, "" otherwise.
func stdStreamArg(info *types.Info, call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "os" {
		return ""
	}
	return sel.Sel.Name
}
