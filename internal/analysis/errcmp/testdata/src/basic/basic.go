// Fixture: error identity comparisons, nil exemption, and the
// errors.Is rewrite.
package basic

import (
	"errors"
	"io"
)

var errDone = errors.New("done")

func compare(err error) bool {
	return err == io.EOF // want "error compared with ==; use errors.Is"
}

func compareNeq(err error) bool {
	return err != errDone // want "error compared with !=; use errors.Is"
}

// Comparing with nil is the idiom: clean.
func nilCheck(err error) bool {
	return err != nil
}

// errors.Is is what the analyzer wants: clean.
func already(err error) bool {
	return errors.Is(err, io.EOF)
}
