// Fixture: the errors.Is rewrite, checked against fix.go.golden.
package fix

import (
	"errors"
	"io"
)

var errStop = errors.New("stop")

func isEOF(err error) bool {
	return err == io.EOF // want "error compared with ==; use errors.Is"
}

func keepGoing(err error) bool {
	return err != errStop // want "error compared with !=; use errors.Is"
}
