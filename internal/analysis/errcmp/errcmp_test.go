package errcmp_test

import (
	"testing"

	"sddict/internal/analysis/analysistest"
	"sddict/internal/analysis/errcmp"
)

func TestBasic(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errcmp.Analyzer, "basic")
}

func TestSuggestedFixes(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, analysistest.TestData(), errcmp.Analyzer, "fix")
}
