// Package errcmp flags error comparisons with == or !=: once errors
// are wrapped with %w (which the errwrap analyzer pushes toward),
// identity comparison silently stops matching and the error path
// changes behavior. errors.Is unwraps; == does not. Comparisons with
// nil are the idiom and stay exempt.
//
// The suggested fix rewrites `x == sentinel` to `errors.Is(x,
// sentinel)` (and the != form to its negation), but only in files that
// already import "errors" — the fix applier edits text, not import
// graphs.
package errcmp

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strconv"

	"sddict/internal/analysis"
)

// Analyzer is the error-identity-comparison checker.
var Analyzer = &analysis.Analyzer{
	Name: "errcmp",
	Doc:  "errors must be compared with errors.Is, not == or !=",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		hasErrors := importsPackage(file, "errors")
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isErrorExpr(pass, be.X) || !isErrorExpr(pass, be.Y) {
				return true
			}
			if isNilExpr(pass, be.X) || isNilExpr(pass, be.Y) {
				return true
			}
			op := "=="
			if be.Op == token.NEQ {
				op = "!="
			}
			d := analysis.Diagnostic{
				Pos:     be.Pos(),
				Message: "error compared with " + op + "; use errors.Is so wrapped errors still match",
			}
			if hasErrors {
				call := "errors.Is(" + exprString(pass.Fset, be.X) + ", " + exprString(pass.Fset, be.Y) + ")"
				if be.Op == token.NEQ {
					call = "!" + call
				}
				d.SuggestedFixes = []analysis.SuggestedFix{{
					Message: "rewrite with errors.Is",
					Edits: []analysis.TextEdit{{
						Pos:     be.Pos(),
						End:     be.End(),
						NewText: call,
					}},
				}}
			}
			pass.Report(d)
			return true
		})
	}
	return nil
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Type != nil && types.Identical(tv.Type, errorType)
}

func isNilExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

func importsPackage(file *ast.File, path string) bool {
	for _, imp := range file.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
			return true
		}
	}
	return false
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
