// Package pattern represents test vectors and test sets over a circuit's
// full-scan input list, and packs them into 64-pattern batches for the
// bit-parallel simulator.
package pattern

import (
	"fmt"
	"math/rand"
	"strings"

	"sddict/internal/logic"
)

// Vector is one test: a ternary value per scan-view input. Dictionary
// construction requires fully specified vectors; ATPG produces cubes with
// don't-cares that are filled before use.
type Vector []logic.Value

// Clone returns an independent copy.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// FullySpecified reports whether the vector contains no X values.
func (v Vector) FullySpecified() bool {
	for _, b := range v {
		if !b.Known() {
			return false
		}
	}
	return true
}

// RandomFill replaces every X with a random binary value drawn from r.
func (v Vector) RandomFill(r *rand.Rand) {
	for i, b := range v {
		if !b.Known() {
			v[i] = logic.FromBit(uint64(r.Intn(2)))
		}
	}
}

// Key returns a compact string key for deduplication; X renders as 'x'.
func (v Vector) Key() string {
	var b strings.Builder
	b.Grow(len(v))
	for _, val := range v {
		b.WriteString(val.String())
	}
	return b.String()
}

func (v Vector) String() string { return v.Key() }

// Random returns a fully specified random vector of the given width.
func Random(r *rand.Rand, width int) Vector {
	v := make(Vector, width)
	for i := range v {
		v[i] = logic.FromBit(uint64(r.Intn(2)))
	}
	return v
}

// FromString parses a vector from a 0/1/x string, e.g. "01x1".
func FromString(s string) (Vector, error) {
	v := make(Vector, len(s))
	for i, c := range s {
		switch c {
		case '0':
			v[i] = logic.Zero
		case '1':
			v[i] = logic.One
		case 'x', 'X':
			v[i] = logic.X
		default:
			return nil, fmt.Errorf("pattern: invalid character %q in %q", c, s)
		}
	}
	return v, nil
}

// Set is an ordered test set.
type Set struct {
	Width int
	Vecs  []Vector
}

// NewSet returns an empty set for vectors of the given width.
func NewSet(width int) *Set { return &Set{Width: width} }

// Len returns the number of tests.
func (s *Set) Len() int { return len(s.Vecs) }

// Add appends a vector, which must match the set width.
func (s *Set) Add(v Vector) {
	if len(v) != s.Width {
		panic(fmt.Sprintf("pattern: vector width %d != set width %d", len(v), s.Width))
	}
	s.Vecs = append(s.Vecs, v)
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	n := NewSet(s.Width)
	n.Vecs = make([]Vector, len(s.Vecs))
	for i, v := range s.Vecs {
		n.Vecs[i] = v.Clone()
	}
	return n
}

// Dedup removes duplicate vectors, keeping first occurrences and preserving
// order.
func (s *Set) Dedup() {
	seen := make(map[string]bool, len(s.Vecs))
	out := s.Vecs[:0]
	for _, v := range s.Vecs {
		k := v.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	s.Vecs = out
}

// Shuffle permutes the test order using r.
func (s *Set) Shuffle(r *rand.Rand) {
	r.Shuffle(len(s.Vecs), func(i, j int) { s.Vecs[i], s.Vecs[j] = s.Vecs[j], s.Vecs[i] })
}

// Batch is up to 64 packed patterns: Words[i] carries, in bit p, the value
// of input i under the batch's p-th pattern. Count is the number of valid
// patterns (low bits).
type Batch struct {
	Words []logic.Word
	Count int
}

// Mask returns a word with the low Count bits set.
func (b *Batch) Mask() uint64 {
	if b.Count >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(b.Count)) - 1
}

// Pack splits the set into 64-pattern batches. Vectors must be fully
// specified.
func (s *Set) Pack() []Batch {
	var batches []Batch
	for start := 0; start < len(s.Vecs); start += logic.WordBits {
		end := start + logic.WordBits
		if end > len(s.Vecs) {
			end = len(s.Vecs)
		}
		b := Batch{Words: make([]logic.Word, s.Width), Count: end - start}
		for p := start; p < end; p++ {
			v := s.Vecs[p]
			bit := uint(p - start)
			for i, val := range v {
				b.Words[i] |= val.Bit() << bit
			}
		}
		batches = append(batches, b)
	}
	return batches
}
