package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sddict/internal/logic"
)

func TestFromStringAndKey(t *testing.T) {
	v, err := FromString("01x1")
	if err != nil {
		t.Fatal(err)
	}
	if v.Key() != "01x1" {
		t.Fatalf("Key = %q", v.Key())
	}
	if v.FullySpecified() {
		t.Fatal("vector with x reported fully specified")
	}
	if _, err := FromString("012"); err == nil {
		t.Fatal("FromString accepted invalid character")
	}
}

func TestRandomFill(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	v, _ := FromString("x0x1xxxx")
	v.RandomFill(r)
	if !v.FullySpecified() {
		t.Fatal("RandomFill left X values")
	}
	if v[1] != logic.Zero || v[3] != logic.One {
		t.Fatal("RandomFill overwrote specified bits")
	}
}

func TestSetDedupAndClone(t *testing.T) {
	s := NewSet(3)
	a, _ := FromString("010")
	b, _ := FromString("011")
	s.Add(a)
	s.Add(b)
	s.Add(a.Clone())
	s.Dedup()
	if s.Len() != 2 {
		t.Fatalf("Dedup left %d vectors, want 2", s.Len())
	}
	c := s.Clone()
	c.Vecs[0][0] = logic.One
	if s.Vecs[0][0] == logic.One {
		t.Fatal("Clone shares vector storage")
	}
}

func TestPackRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	s := NewSet(9)
	for i := 0; i < 130; i++ { // 3 batches: 64 + 64 + 2
		s.Add(Random(r, 9))
	}
	batches := s.Pack()
	if len(batches) != 3 || batches[0].Count != 64 || batches[2].Count != 2 {
		t.Fatalf("unexpected batching: %d batches", len(batches))
	}
	for bi, b := range batches {
		for p := 0; p < b.Count; p++ {
			vec := s.Vecs[bi*64+p]
			for i, val := range vec {
				got := (b.Words[i] >> uint(p)) & 1
				if got != val.Bit() {
					t.Fatalf("batch %d pattern %d input %d: packed %d, want %d", bi, p, i, got, val.Bit())
				}
			}
		}
	}
	if batches[2].Mask() != 3 {
		t.Fatalf("Mask = %x, want 3", batches[2].Mask())
	}
	if batches[0].Mask() != ^uint64(0) {
		t.Fatalf("full batch mask = %x", batches[0].Mask())
	}
}

func TestAddWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add accepted wrong width")
		}
	}()
	NewSet(3).Add(Vector{logic.One})
}

func TestShuffleDeterministic(t *testing.T) {
	mk := func(seed int64) []string {
		r := rand.New(rand.NewSource(seed))
		s := NewSet(4)
		for i := 0; i < 20; i++ {
			s.Add(Random(rand.New(rand.NewSource(int64(i))), 4))
		}
		s.Shuffle(r)
		keys := make([]string, s.Len())
		for i, v := range s.Vecs {
			keys[i] = v.Key()
		}
		return keys
	}
	a, b := mk(5), mk(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Shuffle not deterministic for equal seeds")
		}
	}
}

// TestKeyQuick: Key is injective over fully specified vectors of the same
// width.
func TestKeyQuick(t *testing.T) {
	f := func(aBits, bBits []bool) bool {
		n := len(aBits)
		if len(bBits) < n {
			n = len(bBits)
		}
		if n == 0 {
			return true
		}
		a := make(Vector, n)
		b := make(Vector, n)
		equal := true
		for i := 0; i < n; i++ {
			a[i] = logic.FromBit(boolBit(aBits[i]))
			b[i] = logic.FromBit(boolBit(bBits[i]))
			if aBits[i] != bBits[i] {
				equal = false
			}
		}
		return (a.Key() == b.Key()) == equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
