package experiment

import (
	"testing"

	"sddict/internal/atpg"
	"sddict/internal/core"
	"sddict/internal/gen"
)

// TestRowSmallCircuit runs the whole pipeline end to end on a small
// profile for both test-set types and checks the paper's structural
// claims on the resulting row.
func TestRowSmallCircuit(t *testing.T) {
	for _, tt := range []TestSetType{Diagnostic, TenDetect} {
		row, err := RunProfileRow("s298", tt, Config{Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", tt, err)
		}
		if row.Tests <= 0 || row.Faults <= 0 {
			t.Fatalf("%s: degenerate row %+v", tt, row)
		}
		// Size ordering (paper Section 2): p/f < s/d << full.
		if !(row.SizePF < row.SizeSD && row.SizeSD < row.SizeFull) {
			t.Errorf("%s: size ordering violated: %d / %d / %d", tt, row.SizePF, row.SizeSD, row.SizeFull)
		}
		if row.SizeFull != int64(row.Tests)*int64(row.Faults)*int64(row.Outputs) {
			t.Errorf("%s: full size accounting off", tt)
		}
		if row.SizeSD != int64(row.Tests)*int64(row.Faults+row.Outputs) {
			t.Errorf("%s: s/d size accounting off", tt)
		}
		// Resolution ordering: full <= s/d final <= p/f.
		if row.IndFull > row.IndSDFinal || row.IndSDFinal > row.IndPF {
			t.Errorf("%s: resolution ordering violated: full=%d sd=%d pf=%d",
				tt, row.IndFull, row.IndSDFinal, row.IndPF)
		}
		// Procedure 2 never worsens Procedure 1.
		if row.IndSDRepl > row.IndSDRand {
			t.Errorf("%s: Procedure 2 worsened: %d -> %d", tt, row.IndSDRand, row.IndSDRepl)
		}
		// Minimized storage never exceeds nominal.
		if row.SizeSDMinimized > row.SizeSD {
			t.Errorf("%s: minimized size %d > nominal %d", tt, row.SizeSDMinimized, row.SizeSD)
		}
		t.Logf("%s: %d tests, %d faults, ind full/pf/sd = %d/%d/%d (%s)",
			tt, row.Tests, row.Faults, row.IndFull, row.IndPF, row.IndSDFinal, row.Elapsed)
	}
}

// TestDiagBeatsTenDetectOnFullDictionary reproduces the paper's
// observation that a diagnostic test set leaves fewer indistinguished
// pairs under a full dictionary than a 10-detection set (claim 5 in
// DESIGN.md), while the 10-detection set is larger (start of claim 4).
func TestDiagBeatsTenDetectOnFullDictionary(t *testing.T) {
	diag, err := RunProfileRow("s344", Diagnostic, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tdet, err := RunProfileRow("s344", TenDetect, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if diag.IndFull > tdet.IndFull {
		t.Errorf("diag full-dictionary pairs %d > 10det %d", diag.IndFull, tdet.IndFull)
	}
	if tdet.Tests <= diag.Tests {
		t.Logf("note: 10det (%d tests) not larger than diag (%d tests) on this circuit",
			tdet.Tests, diag.Tests)
	}
}

func TestPrepareUnknownInputs(t *testing.T) {
	if _, err := RunProfileRow("nope", Diagnostic, Config{}); err == nil {
		t.Error("unknown profile accepted")
	}
	c := gen.Profiles["s27"].MustGenerate(1)
	if _, err := Prepare(c, "weird", Config{}); err == nil {
		t.Error("unknown test-set type accepted")
	}
}

// TestPrepareLargeCircuitPaths smoke-tests the large-circuit knob scaling
// with tiny generation budgets so it stays fast.
func TestPrepareLargeCircuitPaths(t *testing.T) {
	tiny := atpg.DefaultConfig(2)
	tiny.Seed = 1
	tiny.MaxRandomBatches = 3
	tiny.UselessBatchLimit = 1
	tiny.TopUpRounds = 0
	pr, err := PrepareProfile("s1423", TenDetect, Config{Seed: 1, DetectCfg: &tiny})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Matrix.K == 0 || pr.Matrix.N == 0 {
		t.Fatal("degenerate matrix")
	}

	dtiny := atpg.DefaultConfig(1)
	dtiny.Seed = 1
	dtiny.MaxRandomBatches = 2
	dtiny.UselessBatchLimit = 1
	dtiny.TopUpRounds = 0
	dcfg := atpg.DefaultDiagConfig()
	dcfg.MaxRounds = 1
	dcfg.MaxMiterCalls = 1
	dcfg.MaxRandomBatches = 1
	prd, err := PrepareProfile("s1423", Diagnostic, Config{Seed: 1, DetectCfg: &dtiny, DiagCfg: &dcfg})
	if err != nil {
		t.Fatal(err)
	}
	row := BuildRow(prd, Diagnostic, Config{Seed: 1, DictOpts: &core.Options{Calls1: 1, MaxRestarts: 1}})
	if row.Dict == nil || row.IndSDFinal < row.IndFull {
		t.Fatalf("bad row: %+v", row)
	}
}
