package experiment

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sddict/internal/core"
)

// prepareSmall runs the front half once on a small profile; helpers below
// reuse it to exercise the back half's failure modes cheaply.
func prepareSmall(t *testing.T) *Prepared {
	t.Helper()
	pr, err := PrepareProfile("s27", Diagnostic, Config{Seed: 7})
	if err != nil {
		t.Fatalf("PrepareProfile: %v", err)
	}
	return pr
}

// TestBuildRowCtxRecoversPanic: a panic anywhere inside the back half
// (here a nil Prepared) must surface as a *StageError with the stage and
// captured stack, not crash the caller.
func TestBuildRowCtxRecoversPanic(t *testing.T) {
	_, err := BuildRowCtx(context.Background(), nil, Diagnostic, Config{})
	if err == nil {
		t.Fatalf("BuildRowCtx(nil) returned no error")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *StageError: %v", err, err)
	}
	if se.Stage != StageDictionary {
		t.Errorf("Stage = %q, want %q", se.Stage, StageDictionary)
	}
	if len(se.Stack) == 0 {
		t.Errorf("recovered panic carries no stack")
	}
	if se.Unwrap() == nil {
		t.Errorf("StageError.Unwrap() = nil")
	}
}

// TestBuildRowCtxInvalidOptions: validation errors come back as errors,
// not panics, and identify the dictionary stage.
func TestBuildRowCtxInvalidOptions(t *testing.T) {
	pr := prepareSmall(t)
	bad := core.DefaultOptions
	bad.Lower = -1
	_, err := BuildRowCtx(context.Background(), pr, Diagnostic, Config{Seed: 7, DictOpts: &bad})
	if err == nil {
		t.Fatalf("invalid DictOpts accepted")
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != StageDictionary {
		t.Fatalf("error = %v, want *StageError in dictionary stage", err)
	}
}

// TestBuildRowCtxInterrupted: a context dead on arrival still produces a
// usable Row — explicit RowInterrupted status, valid dictionary, never
// worse than pass/fail.
func TestBuildRowCtxInterrupted(t *testing.T) {
	pr := prepareSmall(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	row, err := BuildRowCtx(ctx, pr, Diagnostic, Config{Seed: 7})
	if err != nil {
		t.Fatalf("BuildRowCtx: %v", err)
	}
	if row.Status != RowInterrupted {
		t.Fatalf("Status = %q, want %q", row.Status, RowInterrupted)
	}
	if row.Dict == nil {
		t.Fatalf("interrupted row has no dictionary")
	}
	if !row.BuildStats.Interrupted {
		t.Errorf("BuildStats.Interrupted not set")
	}
	if row.IndSDFinal > row.IndPF {
		t.Errorf("interrupted dictionary (%d) worse than pass/fail (%d)", row.IndSDFinal, row.IndPF)
	}
}

// TestPrepareCtxCancelled: the front half cannot degrade (a partial matrix
// would corrupt the dictionaries), so cancellation must be an error.
func TestPrepareCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PrepareProfileCtx(ctx, "s27", Diagnostic, Config{Seed: 7})
	if err == nil {
		t.Fatalf("cancelled Prepare succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}

// TestBuildRowCheckpointLifecycle: with CheckpointPath set, a completed
// build leaves no checkpoint file behind, and an interrupted one leaves a
// checkpoint that a rerun of the same configuration resumes from.
func TestBuildRowCheckpointLifecycle(t *testing.T) {
	pr := prepareSmall(t)
	path := filepath.Join(t.TempDir(), "row.ckpt")
	cfg := Config{Seed: 7, CheckpointPath: path}

	// Interrupted run: the checkpoint must survive.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	row, err := BuildRowCtx(ctx, pr, Diagnostic, cfg)
	if err != nil {
		t.Fatalf("interrupted BuildRowCtx: %v", err)
	}
	if row.Status != RowInterrupted {
		t.Fatalf("Status = %q, want interrupted", row.Status)
	}
	// A context dead on arrival checkpoints nothing (no restart finished),
	// so only assert survival if a file was written.
	ckptExisted := fileExists(path)

	// Completed run: resumes if possible, and the file must be gone after.
	row, err = BuildRowCtx(context.Background(), pr, Diagnostic, cfg)
	if err != nil {
		t.Fatalf("BuildRowCtx: %v", err)
	}
	if row.Status != RowComplete {
		t.Fatalf("Status = %q, want complete", row.Status)
	}
	if ckptExisted && !row.BuildStats.Resumed {
		t.Errorf("checkpoint existed but the rerun did not resume from it")
	}
	if fileExists(path) {
		t.Errorf("checkpoint file survives a completed build")
	}
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
