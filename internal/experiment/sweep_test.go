package experiment

import (
	"context"
	"testing"
)

// TestRunSweepDeterministicAcrossWorkers: the sweep must deliver the same
// rows, in spec order, at every worker count, and a failing row (here an
// unknown profile) must be isolated to its own result.
func TestRunSweepDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{Seed: 1}
	specs := []RowSpec{
		{Circuit: "s27", TType: Diagnostic, Config: cfg},
		{Circuit: "no-such-profile", TType: Diagnostic, Config: cfg},
		{Circuit: "s27", TType: TenDetect, Config: cfg},
	}

	run := func(workers int) []RowResult {
		var orderSeen []int
		results := RunSweepCtx(context.Background(), workers, specs, func(i int, _ RowResult) {
			orderSeen = append(orderSeen, i)
		})
		for i, got := range orderSeen {
			if got != i {
				t.Fatalf("workers=%d: observe order %v not spec order", workers, orderSeen)
			}
		}
		return results
	}

	ref := run(1)
	if len(ref) != len(specs) {
		t.Fatalf("got %d results, want %d", len(ref), len(specs))
	}
	if ref[1].Err == nil {
		t.Fatalf("unknown profile row did not fail")
	}
	if ref[0].Err != nil || ref[2].Err != nil {
		t.Fatalf("good rows failed: %v / %v", ref[0].Err, ref[2].Err)
	}
	if ref[0].Row.Status != RowComplete || ref[2].Row.Status != RowComplete {
		t.Fatalf("good rows not complete: %s / %s", ref[0].Row.Status, ref[2].Row.Status)
	}

	for _, workers := range []int{2, 3} {
		got := run(workers)
		for i := range specs {
			if (got[i].Err == nil) != (ref[i].Err == nil) {
				t.Fatalf("workers=%d row %d: error mismatch (%v vs %v)", workers, i, got[i].Err, ref[i].Err)
			}
			if got[i].Err != nil {
				continue
			}
			a, b := got[i].Row, ref[i].Row
			if a.IndFull != b.IndFull || a.IndPF != b.IndPF || a.IndSDRand != b.IndSDRand ||
				a.IndSDFinal != b.IndSDFinal || a.Tests != b.Tests ||
				a.BuildStats.Restarts != b.BuildStats.Restarts ||
				a.BuildStats.CandidateEvals != b.BuildStats.CandidateEvals {
				t.Fatalf("workers=%d row %d differs:\n%+v\nvs\n%+v", workers, i, a, b)
			}
		}
	}
}
