package experiment

import (
	"context"
	"testing"

	"sddict/internal/obs"
)

// TestRunSweepDeterministicAcrossWorkers: the sweep must deliver the same
// rows, in spec order, at every worker count, and a failing row (here an
// unknown profile) must be isolated to its own result.
func TestRunSweepDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{Seed: 1}
	specs := []RowSpec{
		{Circuit: "s27", TType: Diagnostic, Config: cfg},
		{Circuit: "no-such-profile", TType: Diagnostic, Config: cfg},
		{Circuit: "s27", TType: TenDetect, Config: cfg},
	}

	run := func(workers int) []RowResult {
		var orderSeen []int
		results := RunSweepCtx(context.Background(), workers, specs, func(i int, _ RowResult) {
			orderSeen = append(orderSeen, i)
		})
		for i, got := range orderSeen {
			if got != i {
				t.Fatalf("workers=%d: observe order %v not spec order", workers, orderSeen)
			}
		}
		return results
	}

	ref := run(1)
	if len(ref) != len(specs) {
		t.Fatalf("got %d results, want %d", len(ref), len(specs))
	}
	if ref[1].Err == nil {
		t.Fatalf("unknown profile row did not fail")
	}
	if ref[0].Err != nil || ref[2].Err != nil {
		t.Fatalf("good rows failed: %v / %v", ref[0].Err, ref[2].Err)
	}
	if ref[0].Row.Status != RowComplete || ref[2].Row.Status != RowComplete {
		t.Fatalf("good rows not complete: %s / %s", ref[0].Row.Status, ref[2].Row.Status)
	}

	for _, workers := range []int{2, 3} {
		got := run(workers)
		for i := range specs {
			if (got[i].Err == nil) != (ref[i].Err == nil) {
				t.Fatalf("workers=%d row %d: error mismatch (%v vs %v)", workers, i, got[i].Err, ref[i].Err)
			}
			if got[i].Err != nil {
				continue
			}
			a, b := got[i].Row, ref[i].Row
			if a.IndFull != b.IndFull || a.IndPF != b.IndPF || a.IndSDRand != b.IndSDRand ||
				a.IndSDFinal != b.IndSDFinal || a.Tests != b.Tests ||
				a.BuildStats.Restarts != b.BuildStats.Restarts ||
				a.BuildStats.CandidateEvals != b.BuildStats.CandidateEvals {
				t.Fatalf("workers=%d row %d differs:\n%+v\nvs\n%+v", workers, i, a, b)
			}
		}
	}
}

// TestRunSweepCancelledPrefix: a sweep cancelled mid-run must return an
// exact in-order prefix of the specs — never a full-length slice padded
// with cancellation errors — so callers aligning results to specs by
// index cannot misattribute a row. The observer sees the same prefix.
func TestRunSweepCancelledPrefix(t *testing.T) {
	cfg := Config{Seed: 1}
	var specs []RowSpec
	for i := 0; i < 6; i++ {
		tt := Diagnostic
		if i%2 == 1 {
			tt = TenDetect
		}
		specs = append(specs, RowSpec{Circuit: "s27", TType: tt, Config: cfg})
	}

	for _, workers := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		var observed []RowResult
		results := RunSweepCtx(ctx, workers, specs, func(i int, res RowResult) {
			observed = append(observed, res)
			if i == 1 {
				cancel()
			}
		})
		cancel()
		if len(results) >= len(specs) {
			t.Fatalf("workers=%d: cancelled sweep returned %d of %d rows — not a prefix",
				workers, len(results), len(specs))
		}
		if len(results) != len(observed) {
			t.Fatalf("workers=%d: %d results but %d observed", workers, len(results), len(observed))
		}
		for i, res := range results {
			if res.Spec != specs[i] {
				t.Fatalf("workers=%d: result %d is for spec %s/%s, want %s/%s",
					workers, i, res.Spec.Circuit, res.Spec.TType, specs[i].Circuit, specs[i].TType)
			}
			if res.Err != nil && ctx.Err() == nil {
				t.Fatalf("workers=%d: delivered row %d failed: %v", workers, i, res.Err)
			}
		}
	}
}

// TestRunSweepObsPerRowMetrics: each delivered row carries its own
// metrics snapshot, and the sweep-level registry is their merge plus the
// row-outcome counters — all recorded at the ordered delivery point.
func TestRunSweepObsPerRowMetrics(t *testing.T) {
	cfg := Config{Seed: 1}
	specs := []RowSpec{
		{Circuit: "s27", TType: Diagnostic, Config: cfg},
		{Circuit: "no-such-profile", TType: Diagnostic, Config: cfg},
		{Circuit: "s27", TType: TenDetect, Config: cfg},
	}
	ob := &obs.Observer{Metrics: obs.NewMetrics()}
	results := RunSweepObsCtx(context.Background(), 2, specs, ob, nil)
	if len(results) != len(specs) {
		t.Fatalf("got %d results, want %d", len(results), len(specs))
	}
	var wantRestarts int64
	for i, res := range results {
		if res.Metrics == nil {
			t.Fatalf("row %d: no metrics snapshot", i)
		}
		if res.Err == nil {
			if res.Metrics.Counters["restarts_run"] != int64(res.Row.BuildStats.Restarts) {
				t.Fatalf("row %d: scoped restarts_run = %d, BuildStats has %d",
					i, res.Metrics.Counters["restarts_run"], res.Row.BuildStats.Restarts)
			}
			wantRestarts += int64(res.Row.BuildStats.Restarts)
		}
	}
	snap := ob.Metrics.Snapshot()
	if snap.Counters["restarts_run"] != wantRestarts {
		t.Fatalf("merged restarts_run = %d, rows total %d", snap.Counters["restarts_run"], wantRestarts)
	}
	if snap.Counters["sweep_rows_done"] != 2 || snap.Counters["sweep_rows_failed"] != 1 {
		t.Fatalf("row outcome counters = done %d failed %d, want 2/1",
			snap.Counters["sweep_rows_done"], snap.Counters["sweep_rows_failed"])
	}
}

// sweepCounters are the counters RunSweepObsCtx itself records at the
// delivery point, on top of the merged per-row registries.
var sweepCounters = map[string]bool{
	"sweep_rows_done": true, "sweep_rows_failed": true, "sweep_rows_interrupted": true,
}

// TestRunSweepObsMergeExactness: for every pipeline counter, the
// sweep-level registry must equal the sum of the *delivered* rows'
// scoped snapshots — exactly, with failing rows included and nothing
// else mixed in. This is the accounting identity the scoped-registry
// design exists for.
func TestRunSweepObsMergeExactness(t *testing.T) {
	cfg := Config{Seed: 1}
	specs := []RowSpec{
		{Circuit: "s27", TType: Diagnostic, Config: cfg},
		{Circuit: "no-such-profile", TType: Diagnostic, Config: cfg}, // fails
		{Circuit: "s27", TType: TenDetect, Config: cfg},
		{Circuit: "s208", TType: Diagnostic, Config: cfg},
	}
	ob := &obs.Observer{Metrics: obs.NewMetrics()}
	results := RunSweepObsCtx(context.Background(), 2, specs, ob, nil)
	if len(results) != len(specs) {
		t.Fatalf("got %d results, want %d", len(results), len(specs))
	}

	merged := ob.Metrics.Snapshot()
	rowSums := map[string]int64{}
	for _, res := range results {
		for name, v := range res.Metrics.Counters {
			rowSums[name] += v
		}
	}
	for name, v := range merged.Counters {
		if sweepCounters[name] {
			continue
		}
		if rowSums[name] != v {
			t.Errorf("merged %s = %d, rows sum to %d", name, v, rowSums[name])
		}
	}
	for name, v := range rowSums {
		if sweepCounters[name] {
			// Recorded by the sweep itself at delivery, never inside a row.
			if v != 0 {
				t.Errorf("row-scoped registry carries sweep counter %s = %d", name, v)
			}
			continue
		}
		if merged.Counters[name] != v {
			t.Errorf("rows carry %s = %d but merged registry has %d", name, v, merged.Counters[name])
		}
	}
	if got := merged.Histograms["row_elapsed_ms"].Count; got != int64(len(results)) {
		t.Errorf("row_elapsed_ms count = %d, want one observation per delivered row (%d)",
			got, len(results))
	}
}

// TestRunSweepObsCancelledNoLeak: rows that were in flight (or never
// started) when the sweep was cancelled must leak nothing into the
// sweep-level registry — merge happens only at the ordered delivery
// point, so the merged counters stay the exact sum of the delivered
// prefix and the outcome counters stay the prefix length.
func TestRunSweepObsCancelledNoLeak(t *testing.T) {
	cfg := Config{Seed: 1}
	var specs []RowSpec
	for i := 0; i < 6; i++ {
		tt := Diagnostic
		if i%2 == 1 {
			tt = TenDetect
		}
		specs = append(specs, RowSpec{Circuit: "s27", TType: tt, Config: cfg})
	}

	for _, workers := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		ob := &obs.Observer{Metrics: obs.NewMetrics()}
		results := RunSweepObsCtx(ctx, workers, specs, ob, func(i int, _ RowResult) {
			if i == 1 {
				cancel()
			}
		})
		cancel()
		if len(results) >= len(specs) {
			t.Fatalf("workers=%d: sweep was not cancelled early (%d rows)", workers, len(results))
		}

		merged := ob.Metrics.Snapshot()
		rowSums := map[string]int64{}
		var outcomes int64
		for _, res := range results {
			if res.Metrics == nil {
				t.Fatalf("workers=%d: delivered row missing metrics", workers)
			}
			for name, v := range res.Metrics.Counters {
				rowSums[name] += v
			}
		}
		for name, v := range merged.Counters {
			if sweepCounters[name] {
				outcomes += v
				continue
			}
			if rowSums[name] != v {
				t.Errorf("workers=%d: merged %s = %d but delivered rows sum to %d — undelivered row leaked",
					workers, name, v, rowSums[name])
			}
		}
		if outcomes != int64(len(results)) {
			t.Errorf("workers=%d: outcome counters total %d, want %d (one per delivered row)",
				workers, outcomes, len(results))
		}
		if got := merged.Histograms["row_elapsed_ms"].Count; got != int64(len(results)) {
			t.Errorf("workers=%d: row_elapsed_ms count = %d, want %d",
				workers, got, len(results))
		}
	}
}
