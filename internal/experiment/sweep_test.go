package experiment

import (
	"context"
	"testing"

	"sddict/internal/obs"
)

// TestRunSweepDeterministicAcrossWorkers: the sweep must deliver the same
// rows, in spec order, at every worker count, and a failing row (here an
// unknown profile) must be isolated to its own result.
func TestRunSweepDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{Seed: 1}
	specs := []RowSpec{
		{Circuit: "s27", TType: Diagnostic, Config: cfg},
		{Circuit: "no-such-profile", TType: Diagnostic, Config: cfg},
		{Circuit: "s27", TType: TenDetect, Config: cfg},
	}

	run := func(workers int) []RowResult {
		var orderSeen []int
		results := RunSweepCtx(context.Background(), workers, specs, func(i int, _ RowResult) {
			orderSeen = append(orderSeen, i)
		})
		for i, got := range orderSeen {
			if got != i {
				t.Fatalf("workers=%d: observe order %v not spec order", workers, orderSeen)
			}
		}
		return results
	}

	ref := run(1)
	if len(ref) != len(specs) {
		t.Fatalf("got %d results, want %d", len(ref), len(specs))
	}
	if ref[1].Err == nil {
		t.Fatalf("unknown profile row did not fail")
	}
	if ref[0].Err != nil || ref[2].Err != nil {
		t.Fatalf("good rows failed: %v / %v", ref[0].Err, ref[2].Err)
	}
	if ref[0].Row.Status != RowComplete || ref[2].Row.Status != RowComplete {
		t.Fatalf("good rows not complete: %s / %s", ref[0].Row.Status, ref[2].Row.Status)
	}

	for _, workers := range []int{2, 3} {
		got := run(workers)
		for i := range specs {
			if (got[i].Err == nil) != (ref[i].Err == nil) {
				t.Fatalf("workers=%d row %d: error mismatch (%v vs %v)", workers, i, got[i].Err, ref[i].Err)
			}
			if got[i].Err != nil {
				continue
			}
			a, b := got[i].Row, ref[i].Row
			if a.IndFull != b.IndFull || a.IndPF != b.IndPF || a.IndSDRand != b.IndSDRand ||
				a.IndSDFinal != b.IndSDFinal || a.Tests != b.Tests ||
				a.BuildStats.Restarts != b.BuildStats.Restarts ||
				a.BuildStats.CandidateEvals != b.BuildStats.CandidateEvals {
				t.Fatalf("workers=%d row %d differs:\n%+v\nvs\n%+v", workers, i, a, b)
			}
		}
	}
}

// TestRunSweepCancelledPrefix: a sweep cancelled mid-run must return an
// exact in-order prefix of the specs — never a full-length slice padded
// with cancellation errors — so callers aligning results to specs by
// index cannot misattribute a row. The observer sees the same prefix.
func TestRunSweepCancelledPrefix(t *testing.T) {
	cfg := Config{Seed: 1}
	var specs []RowSpec
	for i := 0; i < 6; i++ {
		tt := Diagnostic
		if i%2 == 1 {
			tt = TenDetect
		}
		specs = append(specs, RowSpec{Circuit: "s27", TType: tt, Config: cfg})
	}

	for _, workers := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		var observed []RowResult
		results := RunSweepCtx(ctx, workers, specs, func(i int, res RowResult) {
			observed = append(observed, res)
			if i == 1 {
				cancel()
			}
		})
		cancel()
		if len(results) >= len(specs) {
			t.Fatalf("workers=%d: cancelled sweep returned %d of %d rows — not a prefix",
				workers, len(results), len(specs))
		}
		if len(results) != len(observed) {
			t.Fatalf("workers=%d: %d results but %d observed", workers, len(results), len(observed))
		}
		for i, res := range results {
			if res.Spec != specs[i] {
				t.Fatalf("workers=%d: result %d is for spec %s/%s, want %s/%s",
					workers, i, res.Spec.Circuit, res.Spec.TType, specs[i].Circuit, specs[i].TType)
			}
			if res.Err != nil && ctx.Err() == nil {
				t.Fatalf("workers=%d: delivered row %d failed: %v", workers, i, res.Err)
			}
		}
	}
}

// TestRunSweepObsPerRowMetrics: each delivered row carries its own
// metrics snapshot, and the sweep-level registry is their merge plus the
// row-outcome counters — all recorded at the ordered delivery point.
func TestRunSweepObsPerRowMetrics(t *testing.T) {
	cfg := Config{Seed: 1}
	specs := []RowSpec{
		{Circuit: "s27", TType: Diagnostic, Config: cfg},
		{Circuit: "no-such-profile", TType: Diagnostic, Config: cfg},
		{Circuit: "s27", TType: TenDetect, Config: cfg},
	}
	ob := &obs.Observer{Metrics: obs.NewMetrics()}
	results := RunSweepObsCtx(context.Background(), 2, specs, ob, nil)
	if len(results) != len(specs) {
		t.Fatalf("got %d results, want %d", len(results), len(specs))
	}
	var wantRestarts int64
	for i, res := range results {
		if res.Metrics == nil {
			t.Fatalf("row %d: no metrics snapshot", i)
		}
		if res.Err == nil {
			if res.Metrics.Counters["restarts_run"] != int64(res.Row.BuildStats.Restarts) {
				t.Fatalf("row %d: scoped restarts_run = %d, BuildStats has %d",
					i, res.Metrics.Counters["restarts_run"], res.Row.BuildStats.Restarts)
			}
			wantRestarts += int64(res.Row.BuildStats.Restarts)
		}
	}
	snap := ob.Metrics.Snapshot()
	if snap.Counters["restarts_run"] != wantRestarts {
		t.Fatalf("merged restarts_run = %d, rows total %d", snap.Counters["restarts_run"], wantRestarts)
	}
	if snap.Counters["sweep_rows_done"] != 2 || snap.Counters["sweep_rows_failed"] != 1 {
		t.Fatalf("row outcome counters = done %d failed %d, want 2/1",
			snap.Counters["sweep_rows_done"], snap.Counters["sweep_rows_failed"])
	}
}
