// Package experiment orchestrates the paper's evaluation pipeline end to
// end: synthesize (or load) a circuit, collapse its stuck-at faults,
// generate a diagnostic or 10-detection test set, fault-simulate the full
// response matrix, and build the full, pass/fail and same/different
// dictionaries. It produces the rows of the paper's Table 6 and the
// ablation data indexed in DESIGN.md.
package experiment

import (
	"fmt"
	"time"

	"sddict/internal/atpg"
	"sddict/internal/core"
	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/netlist"
	"sddict/internal/pattern"
	"sddict/internal/resp"
)

// TestSetType selects between the paper's two test-set flavours.
type TestSetType string

// Test-set flavours used in Table 6.
const (
	Diagnostic TestSetType = "diag"
	TenDetect  TestSetType = "10det"
)

// Config bundles the per-row knobs. Zero values are replaced by defaults
// scaled to the circuit size.
type Config struct {
	Seed int64
	// Effort in [0,1] scales the expensive knobs (Procedure 1 restarts,
	// miter budgets) down for large circuits. 1 = paper-faithful effort.
	Effort float64
	// DetectCfg, DiagCfg and DictOpts override the scaled defaults when
	// non-nil.
	DetectCfg *atpg.Config
	DiagCfg   *atpg.DiagConfig
	DictOpts  *core.Options
}

// Row is one line of Table 6 plus the extra diagnostics this implementation
// records.
type Row struct {
	Circuit string
	TType   TestSetType
	Tests   int

	SizeFull int64 // bits
	SizePF   int64
	SizeSD   int64 // nominal k·(n+m)

	IndFull   int64 // indistinguished fault pairs, full dictionary
	IndPF     int64 // pass/fail dictionary
	IndSDRand int64 // same/different after Procedure 1 restarts
	IndSDRepl int64 // same/different after Procedure 2 (== rand if no gain)
	Proc2Gain bool

	// Extras beyond the paper's columns.
	Faults          int
	Outputs         int
	IndSDFinal      int64 // with fault-free seeding (never worse than p/f)
	StoredBaselines int   // baselines kept after storage minimization
	SizeSDMinimized int64 // k·n + stored·m
	Coverage        float64
	BuildStats      core.BuildStats
	Elapsed         time.Duration
	// Dict is the constructed same/different dictionary.
	Dict *core.Dictionary
}

// Prepared holds the reusable middle state of a pipeline run, so callers
// (benchmarks, ablations) can rebuild dictionaries without regenerating
// tests.
type Prepared struct {
	Circuit *netlist.Circuit // combinational full-scan form
	Faults  []fault.Fault
	Tests   *pattern.Set
	Matrix  *resp.Matrix
	GenInfo string
}

// scaledEffort returns the default effort for a gate count: full effort for
// small circuits, reduced for the big ones so a Table-6 sweep stays
// tractable on one core.
func scaledEffort(gates int) float64 {
	switch {
	case gates <= 700:
		return 1
	case gates <= 3000:
		return 0.35
	default:
		return 0.12
	}
}

// dictOptions derives core.Options from effort.
func dictOptions(seed int64, effort float64) core.Options {
	opt := core.DefaultOptions
	opt.Seed = seed
	opt.Calls1 = max(2, int(float64(opt.Calls1)*effort))
	opt.MaxRestarts = max(4, int(float64(opt.MaxRestarts)*effort))
	return opt
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PrepareProfile synthesizes the named circuit profile and generates the
// requested test set, returning the prepared pipeline state.
func PrepareProfile(name string, tt TestSetType, cfg Config) (*Prepared, error) {
	p, err := gen.Named(name)
	if err != nil {
		return nil, err
	}
	seq := p.MustGenerate(cfg.Seed + 1)
	return Prepare(seq, tt, cfg)
}

// Prepare runs the front half of the pipeline on an arbitrary (possibly
// sequential) circuit: full-scan conversion, fault collapsing, test
// generation and full-response fault simulation.
func Prepare(c *netlist.Circuit, tt TestSetType, cfg Config) (*Prepared, error) {
	comb := netlist.Combinationalize(c)
	col := fault.Collapse(comb)
	effort := cfg.Effort
	if effort <= 0 {
		effort = scaledEffort(comb.NumLogicGates())
	}

	gates := comb.NumLogicGates()
	var tests *pattern.Set
	var info string
	switch tt {
	case TenDetect:
		dcfg := atpg.DefaultConfig(10)
		dcfg.Seed = cfg.Seed + 2
		// Bound the matrix size on large circuits: a 10-detection set is
		// naturally about 10x a detection set; past a few thousand tests
		// the extra patterns add resolution the dictionaries do not need.
		switch {
		case gates > 3000:
			dcfg.MaxTests = 9000
		case gates > 700:
			dcfg.MaxTests = 7000
		}
		if cfg.DetectCfg != nil {
			dcfg = *cfg.DetectCfg
		}
		set, st := atpg.GenerateDetection(comb, col.Faults, dcfg)
		tests = set
		info = fmt.Sprintf("10det: %d random + %d podem tests, coverage %.1f%%, %d untestable",
			st.RandomTests, st.PodemTests, 100*st.Coverage(), st.Untestable)
	case Diagnostic:
		dcfg := atpg.DefaultConfig(1)
		dcfg.Seed = cfg.Seed + 2
		dcfg.Compact = true
		if cfg.DetectCfg != nil {
			dcfg = *cfg.DetectCfg
		}
		base, st := atpg.GenerateDetection(comb, col.Faults, dcfg)
		gcfg := atpg.DefaultDiagConfig()
		gcfg.Seed = cfg.Seed + 3
		gcfg.MaxMiterCalls = max(200, int(3000*effort))
		// Large circuits: miter PODEM rarely closes the hardest pairs, so
		// spend the budget on random distinguishing patience instead.
		switch {
		case gates > 3000:
			gcfg.UselessBatchLimit = 30
			gcfg.RetryBacktrackLimit = 300
			gcfg.MaxMiterCalls = 250
			gcfg.SATConflictBudget = 3000
			gcfg.MaxSATCalls = 30
		case gates > 700:
			gcfg.UselessBatchLimit = 20
			gcfg.RetryBacktrackLimit = 500
			gcfg.SATConflictBudget = 8000
			gcfg.MaxSATCalls = 40
		}
		if cfg.DiagCfg != nil {
			gcfg = *cfg.DiagCfg
		}
		set, dst := atpg.GenerateDiagnostic(comb, col.Faults, base, gcfg)
		tests = set
		info = fmt.Sprintf("diag: %d detection + %d random + %d miter tests, %d equivalent pairs, %d aborted, coverage %.1f%%",
			dst.BaseTests, dst.RandomTests, dst.AddedTests, dst.Equivalent, dst.Aborted, 100*st.Coverage())
	default:
		return nil, fmt.Errorf("experiment: unknown test-set type %q", tt)
	}
	if tests.Len() == 0 {
		return nil, fmt.Errorf("experiment: empty test set for %s/%s", c.Name, tt)
	}

	m := resp.Build(netlist.NewScanView(comb), col.Faults, tests)
	return &Prepared{Circuit: comb, Faults: col.Faults, Tests: tests, Matrix: m, GenInfo: info}, nil
}

// BuildRow runs the back half of the pipeline (dictionary construction) on
// prepared state.
func BuildRow(pr *Prepared, tt TestSetType, cfg Config) Row {
	start := time.Now()
	effort := cfg.Effort
	if effort <= 0 {
		effort = scaledEffort(pr.Circuit.NumLogicGates())
	}
	opts := dictOptions(cfg.Seed+4, effort)
	if cfg.DictOpts != nil {
		opts = *cfg.DictOpts
	}

	m := pr.Matrix
	full := core.NewFull(m)
	pf := core.NewPassFail(m)
	sd, st := core.BuildSameDiff(m, opts)

	row := Row{
		Circuit: pr.Circuit.Name,
		TType:   tt,
		Tests:   m.K,
		Faults:  m.N,
		Outputs: m.M,

		SizeFull: full.SizeBits(),
		SizePF:   pf.SizeBits(),
		SizeSD:   sd.NominalSizeBits(),

		IndFull:   st.IndistFull,
		IndPF:     pf.Indistinguished(),
		IndSDRand: st.IndistProc1,
		IndSDRepl: st.IndistProc2,
		Proc2Gain: st.Proc2Improved,

		IndSDFinal:      st.IndistFinal,
		StoredBaselines: st.StoredBaselines,
		SizeSDMinimized: sd.SizeBits(),
		BuildStats:      st,
		Dict:            sd,
	}
	row.Elapsed = time.Since(start)
	return row
}

// RunProfileRow executes the full pipeline for one Table-6 row.
func RunProfileRow(name string, tt TestSetType, cfg Config) (Row, error) {
	pr, err := PrepareProfile(name, tt, cfg)
	if err != nil {
		return Row{}, err
	}
	row := BuildRow(pr, tt, cfg)
	row.Circuit = name
	return row, nil
}
