// Package experiment orchestrates the paper's evaluation pipeline end to
// end: synthesize (or load) a circuit, collapse its stuck-at faults,
// generate a diagnostic or 10-detection test set, fault-simulate the full
// response matrix, and build the full, pass/fail and same/different
// dictionaries. It produces the rows of the paper's Table 6 and the
// ablation data indexed in DESIGN.md.
//
// Every stage runs under a context. The front half (test generation and
// response simulation) cannot produce a usable partial result, so
// cancellation there surfaces as an error; the back half (dictionary
// construction) degrades gracefully into a best-so-far Row marked
// RowInterrupted. Panics anywhere in the pipeline are recovered at the
// package boundary into a *StageError carrying the stage, circuit and
// stack, so one bad circuit cannot take down a whole Table-6 sweep.
package experiment

import (
	"context"
	"fmt"
	"os"
	"runtime/debug"
	"time"

	"sddict/internal/atpg"
	"sddict/internal/core"
	"sddict/internal/fault"
	"sddict/internal/gen"
	"sddict/internal/netlist"
	"sddict/internal/obs"
	"sddict/internal/pattern"
	"sddict/internal/resp"
)

// TestSetType selects between the paper's two test-set flavours.
type TestSetType string

// Test-set flavours used in Table 6.
const (
	Diagnostic TestSetType = "diag"
	TenDetect  TestSetType = "10det"
)

// Pipeline stage names used in StageError.
const (
	StageSynthesize = "synthesize"
	StagePrepare    = "prepare"
	StageDictionary = "dictionary"
)

// StageError wraps a pipeline failure (including a recovered panic) with
// the stage and circuit it occurred in, so a sweep over many circuits can
// report and skip the failing one.
type StageError struct {
	Stage   string
	Circuit string
	Err     error
	// Stack is the goroutine stack at the point of a recovered panic; nil
	// for ordinary errors.
	Stack []byte
}

func (e *StageError) Error() string {
	if len(e.Stack) > 0 {
		return fmt.Sprintf("experiment: %s: stage %s: panic: %v", e.Circuit, e.Stage, e.Err)
	}
	return fmt.Sprintf("experiment: %s: stage %s: %v", e.Circuit, e.Stage, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// circuitName tolerates a nil circuit so recoverStage's arguments can
// never themselves panic.
func circuitName(c *netlist.Circuit) string {
	if c == nil {
		return ""
	}
	return c.Name
}

// recoverStage converts an in-flight panic into a *StageError stored in
// *errp. Deferred at every exported pipeline entry point.
func recoverStage(stage, circuit string, errp *error) {
	if r := recover(); r != nil {
		err, ok := r.(error)
		if !ok {
			err = fmt.Errorf("%v", r)
		}
		*errp = &StageError{Stage: stage, Circuit: circuit, Err: err, Stack: debug.Stack()}
	}
}

// RowStatus describes how completely a Row was computed.
type RowStatus string

// Row statuses.
const (
	// RowComplete marks a row whose dictionary construction ran to its
	// normal stopping condition.
	RowComplete RowStatus = "complete"
	// RowInterrupted marks a row built from a cancelled or expired
	// context: the dictionary is the best found so far (never worse than
	// pass/fail when fault-free seeding is on) but the search was cut
	// short.
	RowInterrupted RowStatus = "interrupted"
)

// Config bundles the per-row knobs. Zero values are replaced by defaults
// scaled to the circuit size.
type Config struct {
	Seed int64
	// Effort in [0,1] scales the expensive knobs (Procedure 1 restarts,
	// miter budgets) down for large circuits. 1 = paper-faithful effort.
	Effort float64
	// Workers bounds the parallelism inside one row: the response-matrix
	// fault sweep and the Procedure 1 restart search both fan out across
	// this many workers (0 = one per available CPU, 1 = sequential). Every
	// setting produces byte-identical rows (DESIGN.md §9).
	Workers int
	// DetectCfg, DiagCfg and DictOpts override the scaled defaults when
	// non-nil.
	DetectCfg *atpg.Config
	DiagCfg   *atpg.DiagConfig
	DictOpts  *core.Options

	// CheckpointPath, when non-empty, makes dictionary construction
	// persist its restart state to this file so a killed run can resume.
	// If the file already exists and matches the matrix and options, the
	// search resumes from it; the file is rewritten every CheckpointEvery
	// completed restarts and removed on clean completion.
	CheckpointPath string
	// CheckpointEvery is the restart interval between checkpoint writes
	// (default 1 when CheckpointPath is set).
	CheckpointEvery int

	// Obs observes the pipeline: response-matrix batches and dictionary
	// construction record into it, and build events land on its trace.
	// Measurement only — rows are byte-identical with Obs set or nil
	// (DESIGN.md §10). In a sweep, RunSweepObsCtx installs a per-row
	// scoped observer here automatically.
	Obs *obs.Observer
}

// Row is one line of Table 6 plus the extra diagnostics this implementation
// records.
type Row struct {
	Circuit string
	TType   TestSetType
	Tests   int

	SizeFull int64 // bits
	SizePF   int64
	SizeSD   int64 // nominal k·(n+m)

	IndFull   int64 // indistinguished fault pairs, full dictionary
	IndPF     int64 // pass/fail dictionary
	IndSDRand int64 // same/different after Procedure 1 restarts
	IndSDRepl int64 // same/different after Procedure 2 (== rand if no gain)
	Proc2Gain bool

	// Extras beyond the paper's columns.
	Faults          int
	Outputs         int
	IndSDFinal      int64 // with fault-free seeding (never worse than p/f)
	StoredBaselines int   // baselines kept after storage minimization
	SizeSDMinimized int64 // k·n + stored·m
	Coverage        float64
	BuildStats      core.BuildStats
	Elapsed         time.Duration
	// Status reports whether the dictionary search ran to completion or
	// was interrupted (see RowStatus).
	Status RowStatus
	// Dict is the constructed same/different dictionary.
	Dict *core.Dictionary
}

// Prepared holds the reusable middle state of a pipeline run, so callers
// (benchmarks, ablations) can rebuild dictionaries without regenerating
// tests.
type Prepared struct {
	Circuit *netlist.Circuit // combinational full-scan form
	Faults  []fault.Fault
	Tests   *pattern.Set
	Matrix  *resp.Matrix
	GenInfo string
}

// scaledEffort returns the default effort for a gate count: full effort for
// small circuits, reduced for the big ones so a Table-6 sweep stays
// tractable on one core.
func scaledEffort(gates int) float64 {
	switch {
	case gates <= 700:
		return 1
	case gates <= 3000:
		return 0.35
	default:
		return 0.12
	}
}

// dictOptions derives core.Options from effort.
func dictOptions(seed int64, effort float64) core.Options {
	opt := core.DefaultOptions
	opt.Seed = seed
	opt.Calls1 = max(2, int(float64(opt.Calls1)*effort))
	opt.MaxRestarts = max(4, int(float64(opt.MaxRestarts)*effort))
	return opt
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PrepareProfile synthesizes the named circuit profile and generates the
// requested test set, returning the prepared pipeline state.
func PrepareProfile(name string, tt TestSetType, cfg Config) (*Prepared, error) {
	return PrepareProfileCtx(context.Background(), name, tt, cfg)
}

// PrepareProfileCtx is PrepareProfile under a context.
func PrepareProfileCtx(ctx context.Context, name string, tt TestSetType, cfg Config) (pr *Prepared, err error) {
	defer recoverStage(StageSynthesize, name, &err)
	p, err := gen.Named(name)
	if err != nil {
		return nil, err
	}
	seq := p.MustGenerate(cfg.Seed + 1)
	return PrepareCtx(ctx, seq, tt, cfg)
}

// Prepare runs the front half of the pipeline on an arbitrary (possibly
// sequential) circuit: full-scan conversion, fault collapsing, test
// generation and full-response fault simulation.
func Prepare(c *netlist.Circuit, tt TestSetType, cfg Config) (*Prepared, error) {
	return PrepareCtx(context.Background(), c, tt, cfg)
}

// PrepareCtx is Prepare under a context. The front half has no usable
// partial result — a truncated test set or response matrix would silently
// distort every dictionary derived from it — so cancellation here returns
// an error (wrapping ctx.Err()) rather than degraded state.
func PrepareCtx(ctx context.Context, c *netlist.Circuit, tt TestSetType, cfg Config) (pr *Prepared, err error) {
	defer recoverStage(StagePrepare, circuitName(c), &err)
	if ctx == nil {
		ctx = context.Background()
	}
	comb := netlist.Combinationalize(c)
	col := fault.Collapse(comb)
	effort := cfg.Effort
	if effort <= 0 {
		effort = scaledEffort(comb.NumLogicGates())
	}

	gates := comb.NumLogicGates()
	var tests *pattern.Set
	var info string
	switch tt {
	case TenDetect:
		dcfg := atpg.DefaultConfig(10)
		dcfg.Seed = cfg.Seed + 2
		// Bound the matrix size on large circuits: a 10-detection set is
		// naturally about 10x a detection set; past a few thousand tests
		// the extra patterns add resolution the dictionaries do not need.
		switch {
		case gates > 3000:
			dcfg.MaxTests = 9000
		case gates > 700:
			dcfg.MaxTests = 7000
		}
		if cfg.DetectCfg != nil {
			dcfg = *cfg.DetectCfg
		}
		set, st := atpg.GenerateDetectionCtx(ctx, comb, col.Faults, dcfg)
		tests = set
		info = fmt.Sprintf("10det: %d random + %d podem tests, coverage %.1f%%, %d untestable",
			st.RandomTests, st.PodemTests, 100*st.Coverage(), st.Untestable)
	case Diagnostic:
		dcfg := atpg.DefaultConfig(1)
		dcfg.Seed = cfg.Seed + 2
		dcfg.Compact = true
		if cfg.DetectCfg != nil {
			dcfg = *cfg.DetectCfg
		}
		base, st := atpg.GenerateDetectionCtx(ctx, comb, col.Faults, dcfg)
		gcfg := atpg.DefaultDiagConfig()
		gcfg.Seed = cfg.Seed + 3
		gcfg.MaxMiterCalls = max(200, int(3000*effort))
		// Large circuits: miter PODEM rarely closes the hardest pairs, so
		// spend the budget on random distinguishing patience instead.
		switch {
		case gates > 3000:
			gcfg.UselessBatchLimit = 30
			gcfg.RetryBacktrackLimit = 300
			gcfg.MaxMiterCalls = 250
			gcfg.SATConflictBudget = 3000
			gcfg.MaxSATCalls = 30
		case gates > 700:
			gcfg.UselessBatchLimit = 20
			gcfg.RetryBacktrackLimit = 500
			gcfg.SATConflictBudget = 8000
			gcfg.MaxSATCalls = 40
		}
		if cfg.DiagCfg != nil {
			gcfg = *cfg.DiagCfg
		}
		set, dst := atpg.GenerateDiagnosticCtx(ctx, comb, col.Faults, base, gcfg)
		tests = set
		info = fmt.Sprintf("diag: %d detection + %d random + %d miter tests, %d equivalent pairs, %d aborted, coverage %.1f%%",
			dst.BaseTests, dst.RandomTests, dst.AddedTests, dst.Equivalent, dst.Aborted, 100*st.Coverage())
	default:
		return nil, fmt.Errorf("experiment: unknown test-set type %q", tt)
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, &StageError{Stage: StagePrepare, Circuit: c.Name,
			Err: fmt.Errorf("test generation interrupted: %w", cerr)}
	}
	if tests.Len() == 0 {
		return nil, fmt.Errorf("experiment: empty test set for %s/%s", c.Name, tt)
	}

	m, merr := resp.BuildObsCtx(ctx, cfg.Workers, netlist.NewScanView(comb), col.Faults, tests, cfg.Obs)
	if merr != nil {
		return nil, &StageError{Stage: StagePrepare, Circuit: c.Name,
			Err: fmt.Errorf("response matrix: %w", merr)}
	}
	return &Prepared{Circuit: comb, Faults: col.Faults, Tests: tests, Matrix: m, GenInfo: info}, nil
}

// BuildRow runs the back half of the pipeline (dictionary construction) on
// prepared state.
func BuildRow(pr *Prepared, tt TestSetType, cfg Config) Row {
	row, err := BuildRowCtx(context.Background(), pr, tt, cfg)
	if err != nil {
		panic(err) // preserved pre-context behaviour: invalid options panicked
	}
	return row
}

// BuildRowCtx is BuildRow under a context. Dictionary construction is an
// anytime search, so cancellation degrades gracefully: the returned Row
// holds the best dictionary found so far and Status RowInterrupted. A
// non-nil error means no row could be built (invalid options, recovered
// panic) — except for checkpoint-save failures, where the returned Row is
// still valid and the error reports why resume state could not be
// persisted.
func BuildRowCtx(ctx context.Context, pr *Prepared, tt TestSetType, cfg Config) (row Row, err error) {
	name := ""
	if pr != nil {
		name = circuitName(pr.Circuit)
	}
	defer recoverStage(StageDictionary, name, &err)
	start := time.Now()
	effort := cfg.Effort
	if effort <= 0 {
		effort = scaledEffort(pr.Circuit.NumLogicGates())
	}
	opts := dictOptions(cfg.Seed+4, effort)
	opts.Workers = cfg.Workers
	if cfg.DictOpts != nil {
		opts = *cfg.DictOpts
	}
	if opts.Obs == nil {
		opts.Obs = cfg.Obs
	}

	m := pr.Matrix
	var saveErr error
	if cfg.CheckpointPath != "" {
		opts.CheckpointEvery = cfg.CheckpointEvery
		if opts.CheckpointEvery <= 0 {
			opts.CheckpointEvery = 1
		}
		path := cfg.CheckpointPath
		opts.OnCheckpoint = func(cp core.Checkpoint) {
			if serr := cp.Save(path); serr != nil && saveErr == nil {
				saveErr = serr
			}
		}
		if cp, lerr := core.LoadCheckpoint(path); lerr == nil {
			if verr := cp.ValidateFor(m, opts); verr == nil {
				opts.Resume = cp
			}
		}
	}

	full := core.NewFull(m)
	pf := core.NewPassFail(m)
	sd, st, berr := core.BuildSameDiffCtx(ctx, m, opts)
	if berr != nil {
		return Row{}, &StageError{Stage: StageDictionary, Circuit: pr.Circuit.Name, Err: berr}
	}

	row = Row{
		Circuit: pr.Circuit.Name,
		TType:   tt,
		Tests:   m.K,
		Faults:  m.N,
		Outputs: m.M,

		SizeFull: full.SizeBits(),
		SizePF:   pf.SizeBits(),
		SizeSD:   sd.NominalSizeBits(),

		IndFull:   st.IndistFull,
		IndPF:     pf.Indistinguished(),
		IndSDRand: st.IndistProc1,
		IndSDRepl: st.IndistProc2,
		Proc2Gain: st.Proc2Improved,

		IndSDFinal:      st.IndistFinal,
		StoredBaselines: st.StoredBaselines,
		SizeSDMinimized: sd.SizeBits(),
		BuildStats:      st,
		Status:          RowComplete,
		Dict:            sd,
	}
	if st.Interrupted {
		row.Status = RowInterrupted
	} else if cfg.CheckpointPath != "" {
		// Clean completion: the checkpoint is stale state now.
		os.Remove(cfg.CheckpointPath)
	}
	row.Elapsed = time.Since(start)
	if saveErr != nil {
		return row, &StageError{Stage: StageDictionary, Circuit: pr.Circuit.Name,
			Err: fmt.Errorf("checkpoint save: %w", saveErr)}
	}
	return row, nil
}

// RunProfileRow executes the full pipeline for one Table-6 row.
func RunProfileRow(name string, tt TestSetType, cfg Config) (Row, error) {
	return RunProfileRowCtx(context.Background(), name, tt, cfg)
}

// RunProfileRowCtx is RunProfileRow under a context: cancellation during
// test generation errors out, cancellation during dictionary construction
// yields a best-so-far Row with Status RowInterrupted.
func RunProfileRowCtx(ctx context.Context, name string, tt TestSetType, cfg Config) (Row, error) {
	pr, err := PrepareProfileCtx(ctx, name, tt, cfg)
	if err != nil {
		return Row{}, err
	}
	row, err := BuildRowCtx(ctx, pr, tt, cfg)
	if err != nil {
		return row, err
	}
	row.Circuit = name
	return row, nil
}
