package experiment

import (
	"context"

	"sddict/internal/par"
)

// RowSpec identifies one row of a Table 6 sweep together with its
// per-row configuration (seed, effort, checkpoint path).
type RowSpec struct {
	Circuit string
	TType   TestSetType
	Config  Config
}

// RowResult couples a finished sweep row with its spec and failure state.
// Err carries prepare/build failures (including recovered panics, as
// *StageError); when Err is a checkpoint-save failure the Row is still
// valid and Row.Dict is non-nil, mirroring BuildRowCtx's contract.
type RowResult struct {
	Spec    RowSpec
	Row     Row
	GenInfo string
	Err     error
}

// runSpec executes one full pipeline row. Panics inside the pipeline are
// already converted to *StageError by the recoverStage defers in
// PrepareProfileCtx and BuildRowCtx, so a worker running this task can
// only propagate a panic from outside the pipeline proper.
func runSpec(ctx context.Context, sp RowSpec) RowResult {
	res := RowResult{Spec: sp}
	pr, err := PrepareProfileCtx(ctx, sp.Circuit, sp.TType, sp.Config)
	if err != nil {
		res.Err = err
		return res
	}
	res.GenInfo = pr.GenInfo
	row, err := BuildRowCtx(ctx, pr, sp.TType, sp.Config)
	row.Circuit = sp.Circuit
	res.Row, res.Err = row, err
	return res
}

// RunSweepCtx runs the given sweep rows, at most workers concurrently
// (0 = one per available CPU), and returns their results in spec order.
// Rows are independent pipelines — each fails, degrades (RowInterrupted)
// or panics on its own without affecting the others, exactly as in the
// sequential sweep. observe, when non-nil, is called with each result in
// strict spec order as soon as every earlier row has been delivered, so
// callers can stream a deterministic report while later rows still run.
//
// Worker parallelism composes with Config.Workers (intra-row): a sweep of
// many small circuits parallelizes best across rows, a single huge row
// across restarts and fault shards. Both knobs preserve byte-identical
// results; only scheduling changes.
func RunSweepCtx(ctx context.Context, workers int, specs []RowSpec, observe func(i int, res RowResult)) []RowResult {
	results := make([]RowResult, 0, len(specs))
	pool := par.New(workers)
	par.Stream(ctx, pool, len(specs), func(ctx context.Context, i int) RowResult {
		return runSpec(ctx, specs[i])
	}, func(i int, res RowResult) bool {
		results = append(results, res)
		if observe != nil {
			observe(i, res)
		}
		return true
	})
	return results
}
