package experiment

import (
	"context"
	"time"

	"sddict/internal/obs"
	"sddict/internal/par"
)

// RowSpec identifies one row of a Table 6 sweep together with its
// per-row configuration (seed, effort, checkpoint path).
type RowSpec struct {
	Circuit string
	TType   TestSetType
	Config  Config
}

// RowResult couples a finished sweep row with its spec and failure state.
// Err carries prepare/build failures (including recovered panics, as
// *StageError); when Err is a checkpoint-save failure the Row is still
// valid and Row.Dict is non-nil, mirroring BuildRowCtx's contract.
type RowResult struct {
	Spec    RowSpec
	Row     Row
	GenInfo string
	Err     error
	// Metrics is the row's own observability snapshot (nil when the sweep
	// runs unobserved): each row records into a scoped registry, so its
	// counters are untangled from concurrent rows'.
	Metrics *obs.Snapshot

	ob *obs.Observer // the row's scoped observer, consumed at the fold point
}

// rowLabel names a row in traces and scoped metrics.
func rowLabel(sp RowSpec) string { return sp.Circuit + "/" + string(sp.TType) }

// runSpec executes one full pipeline row under the row's scoped observer.
// Panics inside the pipeline are already converted to *StageError by the
// recoverStage defers in PrepareProfileCtx and BuildRowCtx, so a worker
// running this task can only propagate a panic from outside the pipeline
// proper.
func runSpec(ctx context.Context, sp RowSpec, ob *obs.Observer) RowResult {
	rob := ob.Scoped(rowLabel(sp))
	if rob.Tracing() {
		// Worker-side like restart_start: records real execution order.
		rob.Emit("row_start", nil)
	}
	if sp.Config.Obs == nil {
		sp.Config.Obs = rob
	}
	res := RowResult{Spec: sp, ob: rob}
	pr, err := PrepareProfileCtx(ctx, sp.Circuit, sp.TType, sp.Config)
	if err != nil {
		res.Err = err
		return res
	}
	res.GenInfo = pr.GenInfo
	row, err := BuildRowCtx(ctx, pr, sp.TType, sp.Config)
	row.Circuit = sp.Circuit
	res.Row, res.Err = row, err
	return res
}

// RunSweepCtx runs the given sweep rows, at most workers concurrently
// (0 = one per available CPU), and returns their results in spec order.
// Rows are independent pipelines — each fails, degrades (RowInterrupted)
// or panics on its own without affecting the others, exactly as in the
// sequential sweep. observe, when non-nil, is called with each result in
// strict spec order as soon as every earlier row has been delivered, so
// callers can stream a deterministic report while later rows still run.
//
// On cancellation the returned slice is the in-order prefix of specs
// whose rows were delivered before the context ended — callers must align
// results to specs by RowResult.Spec (or by prefix), never assume
// len(results) == len(specs).
//
// Worker parallelism composes with Config.Workers (intra-row): a sweep of
// many small circuits parallelizes best across rows, a single huge row
// across restarts and fault shards. Both knobs preserve byte-identical
// results; only scheduling changes.
func RunSweepCtx(ctx context.Context, workers int, specs []RowSpec, observe func(i int, res RowResult)) []RowResult {
	return RunSweepObsCtx(ctx, workers, specs, nil, observe)
}

// RunSweepObsCtx is RunSweepCtx with an observer. Each row runs under a
// scoped child observer (fresh metrics registry, shared trace), and at
// the ordered delivery point the row's counters are merged into ob's
// registry and snapshotted into RowResult.Metrics — so sweep-level
// metric values are independent of worker count. Row outcome counters
// (sweep_rows_done/failed/interrupted) and the row_end trace event are
// likewise recorded only at delivery.
func RunSweepObsCtx(ctx context.Context, workers int, specs []RowSpec, ob *obs.Observer, observe func(i int, res RowResult)) []RowResult {
	results := make([]RowResult, 0, len(specs))
	pool := par.New(workers)
	start := time.Now()
	par.Stream(ctx, pool, len(specs), func(ctx context.Context, i int) RowResult {
		return runSpec(ctx, specs[i], ob)
	}, func(i int, res RowResult) bool {
		if rob := res.ob; rob != nil {
			snap := rob.Metrics.Snapshot()
			res.Metrics = &snap
			res.ob = nil
			ob.M().Merge(rob.Metrics)
		}
		switch {
		case res.Err != nil:
			ob.M().Inc(obs.SweepRowsFailed)
		case res.Row.Status == RowInterrupted:
			ob.M().Inc(obs.SweepRowsInterrupted)
		default:
			ob.M().Inc(obs.SweepRowsDone)
		}
		ob.M().Observe(obs.RowElapsedMs, res.Row.Elapsed.Milliseconds())
		if ob.Tracing() {
			f := map[string]any{
				"row": rowLabel(res.Spec), "index": i,
				"status": string(res.Row.Status), "ok": res.Err == nil,
				"elapsed_ms": time.Since(start).Milliseconds(),
			}
			if res.Err != nil {
				f["error"] = res.Err.Error()
			}
			ob.Emit("row_end", f)
		}
		ob.Tick()
		results = append(results, res)
		if observe != nil {
			observe(i, res)
		}
		// Stop delivering once the context ends: the returned results stay
		// an exact prefix of specs instead of a full-length slice padded
		// with cancellation errors.
		return ctx.Err() == nil
	})
	return results
}
