GO ?= go

.PHONY: build test race vet lint fuzz check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The repo's own invariant checkers (determinism, ctxpropagate,
# atomicwrite, errwrap); see DESIGN.md §8.
lint:
	$(GO) run ./cmd/sddlint ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the .bench parser; CI-friendly budget.
fuzz:
	$(GO) test -run=FuzzParse -fuzz=FuzzParse -fuzztime=30s ./internal/bench/

# The gate for every change: static analysis (go vet + sddlint) plus the
# full suite under the race detector.
check: vet lint race

clean:
	$(GO) clean ./...
