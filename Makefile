GO ?= go

.PHONY: build test race vet fuzz check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the .bench parser; CI-friendly budget.
fuzz:
	$(GO) test -run=FuzzParse -fuzz=FuzzParse -fuzztime=30s ./internal/bench/

# The gate for every change: static analysis plus the full suite under the
# race detector.
check: vet race

clean:
	$(GO) clean ./...
