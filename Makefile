GO ?= go

.PHONY: build test race vet lint fuzz bench check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The repo's own invariant checkers (determinism, ctxpropagate,
# atomicwrite, errwrap, concurrency, noprint); see DESIGN.md §8.
lint:
	$(GO) run ./cmd/sddlint ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the .bench parser; CI-friendly budget.
fuzz:
	$(GO) test -run=FuzzParse -fuzz=FuzzParse -fuzztime=30s ./internal/bench/

# Parallel-layer benchmarks (restart search, fault-sim sharding, sweep
# rows) at workers=1 vs N, archived as machine-readable JSON; the format
# and the speedup caveats are documented in EXPERIMENTS.md. The raw log
# is kept in a temp file so a failed bench run fails the target instead
# of feeding benchjson an empty pipe.
bench:
	$(GO) test -run='^$$' -bench='^BenchmarkParallel' -count=1 -timeout=30m . > bench_parallel.out
	$(GO) run ./cmd/benchjson -o BENCH_parallel.json bench_parallel.out
	@rm -f bench_parallel.out
	@echo "wrote BENCH_parallel.json"

# The gate for every change: static analysis (go vet + sddlint) plus the
# full suite under the race detector.
check: vet lint race

clean:
	$(GO) clean ./...
