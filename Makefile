GO ?= go

.PHONY: build test race vet lint lint-fix-check fuzz bench bench-compare chaos check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The repo's own invariant checkers (sddlint -list prints the catalog);
# see DESIGN.md §8 and §13.
lint:
	$(GO) run ./cmd/sddlint ./...

# Convergence proof for `sddlint -fix`: apply every suggested fix to a
# scratch copy of the module and fail if any file changes — on a clean
# tree, -fix must be a byte-for-byte no-op. This is what keeps suggested
# fixes trustworthy enough to auto-apply.
lint-fix-check:
	@rm -rf .lintfix-scratch
	@mkdir .lintfix-scratch
	@tar --exclude=.git --exclude=.lintfix-scratch -cf - . | tar -xf - -C .lintfix-scratch
	cd .lintfix-scratch && $(GO) run ./cmd/sddlint -fix ./...
	@if ! diff -r --exclude=.git --exclude=.lintfix-scratch -q . .lintfix-scratch > /dev/null; then \
		echo "lint-fix-check: sddlint -fix modified a clean tree:"; \
		diff -r --exclude=.git --exclude=.lintfix-scratch . .lintfix-scratch; \
		rm -rf .lintfix-scratch; \
		exit 1; \
	fi
	@rm -rf .lintfix-scratch
	@echo "lint-fix-check: -fix is a no-op on a clean tree"

race:
	$(GO) test -race ./...

# Short fuzz pass over the .bench parser; CI-friendly budget.
fuzz:
	$(GO) test -run=FuzzParse -fuzz=FuzzParse -fuzztime=30s ./internal/bench/

# Parallel-layer benchmarks (restart search, fault-sim sharding, sweep
# rows) at workers=1 vs N plus the partition scan/refine microbenchmarks
# (DESIGN.md §14), archived as machine-readable JSON; the format and the
# speedup caveats are documented in EXPERIMENTS.md. The raw log is kept
# in a temp file so a failed bench run fails the target instead of
# feeding benchjson an empty pipe.
BENCH_RE = ^Benchmark(Parallel|DistPerClass|Refine)
BENCH_PKGS = . ./internal/core/

bench:
	$(GO) test -run='^$$' -bench='$(BENCH_RE)' -count=1 -timeout=30m $(BENCH_PKGS) > bench_parallel.out
	$(GO) run ./cmd/benchjson -o BENCH_parallel.json bench_parallel.out
	@rm -f bench_parallel.out
	@echo "wrote BENCH_parallel.json"

# Continuous bench regression gate: one quick iteration of the
# parallel-layer benchmarks, diffed against the checked-in baseline.
# ns/op is a generous smoke gate (8x — the baseline was recorded on
# different hardware and -benchtime=1x timings are noisy); the
# deterministic custom metrics (cand_evals, ind_sd, restarts, ...) must
# match the baseline exactly, which catches algorithmic drift on any
# machine. -short drops the big circuits; their baseline rows report as
# informational "missing" lines.
bench-compare:
	$(GO) test -run='^$$' -bench='$(BENCH_RE)' -benchtime=1x -count=1 -short -timeout=10m $(BENCH_PKGS) > bench_compare.out
	$(GO) run ./cmd/benchjson -o bench_compare.json bench_compare.out
	$(GO) run ./cmd/benchjson compare -ns-ratio 8 BENCH_parallel.json bench_compare.json
	@rm -f bench_compare.out bench_compare.json

# Fault-injection and chaos suite (DESIGN.md §12, §15, §16) under the
# race detector: artifact corruption matrices, the faultfs seam, the
# serve middleware contracts (spans, request IDs, shed/drain), the span
# free-list and sampling determinism tests in internal/obs, the
# case-store journal/torn-tail matrix, the signal/drain exec tests, and
# the end-to-end server-integration legs (publish → serve → diagnose
# parity; shed + SIGTERM under sddload chaos; recall byte-identity and
# SIGKILL + torn-journal restart under repeated-signature -hot sddload
# traffic; the traced-serve → sddload → `sddstat serve` join).
chaos:
	$(GO) test -race -count=1 ./internal/dictio/ ./internal/faultfs/ ./internal/obs/ ./internal/serve/ ./internal/cli/ ./internal/casestore/
	$(GO) test -race -count=1 -run 'TestServe' .

# The gate for every change: static analysis (go vet + sddlint) plus the
# full suite under the race detector.
check: vet lint race

clean:
	$(GO) clean ./...
