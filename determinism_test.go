package sddict_test

// Parallel-determinism regression tests (DESIGN.md §9): every layer that
// fans out across internal/par — the response-matrix capture and the
// Procedure 1 restart search — must produce byte-identical results at
// every worker count, including across a checkpoint interrupt/resume
// boundary. CI runs this file under GOMAXPROCS=1 and GOMAXPROCS=4.

import (
	"bytes"
	"context"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"sddict/internal/core"
	"sddict/internal/experiment"
	"sddict/internal/netlist"
	"sddict/internal/obs"
	"sddict/internal/resp"
)

// detProfiles are the two small circuit profiles the regression pins;
// each pairs with a different test-set flavour so both ATPG paths feed
// the parallel layers.
var detProfiles = []struct {
	name string
	tt   experiment.TestSetType
}{
	{"s27", experiment.Diagnostic},
	{"s208", experiment.TenDetect},
}

// workerCounts are the pool sizes every baseline must agree across. The
// NumCPU entry makes the test exercise the machine's real parallelism,
// whatever CI box it lands on.
func workerCounts() []int {
	return []int{1, 4, runtime.NumCPU()}
}

func prepareDet(t *testing.T, name string, tt experiment.TestSetType) *experiment.Prepared {
	t.Helper()
	pr, err := experiment.PrepareProfile(name, tt, experiment.Config{Seed: 3, Workers: 1})
	if err != nil {
		t.Fatalf("prepare %s/%s: %v", name, tt, err)
	}
	return pr
}

func assertSameBuild(t *testing.T, label string, dRef, d *core.Dictionary, stRef, st core.BuildStats) {
	t.Helper()
	if st != stRef {
		t.Fatalf("%s: BuildStats differ:\n%+v\nvs reference\n%+v", label, st, stRef)
	}
	for j := range dRef.Baselines {
		if d.Baselines[j] != dRef.Baselines[j] {
			t.Fatalf("%s: baseline %d = %d, reference %d", label, j, d.Baselines[j], dRef.Baselines[j])
		}
	}
}

// TestBuildSameDiffWorkersIdentical: identical dictionaries and identical
// BuildStats counters (restarts, candidate evaluations, every indist
// figure) at workers 1, 4 and NumCPU.
func TestBuildSameDiffWorkersIdentical(t *testing.T) {
	for _, prof := range detProfiles {
		pr := prepareDet(t, prof.name, prof.tt)
		opt := core.DefaultOptions
		opt.Seed = 11
		opt.Calls1 = 8
		opt.MaxRestarts = 40

		opt.Workers = 1
		dRef, stRef := core.BuildSameDiff(pr.Matrix, opt)
		for _, workers := range workerCounts()[1:] {
			o := opt
			o.Workers = workers
			d, st := core.BuildSameDiff(pr.Matrix, o)
			assertSameBuild(t, prof.name+"/workers="+itoa(workers), dRef, d, stRef, st)
		}
	}
}

// TestResponseMatrixWorkersIdentical: the sharded fault sweep and the
// concurrent per-test assembly must reproduce the sequential matrix
// exactly — class ids included, not just the partition they induce.
func TestResponseMatrixWorkersIdentical(t *testing.T) {
	for _, prof := range detProfiles {
		pr := prepareDet(t, prof.name, prof.tt)
		view := netlist.NewScanView(pr.Circuit)
		ref := pr.Matrix
		for _, workers := range workerCounts()[1:] {
			m, err := resp.BuildWorkersCtx(context.Background(), workers, view, pr.Faults, pr.Tests)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", prof.name, workers, err)
			}
			for j := 0; j < ref.K; j++ {
				if m.NumClasses(j) != ref.NumClasses(j) {
					t.Fatalf("%s workers=%d test %d: %d classes, want %d",
						prof.name, workers, j, m.NumClasses(j), ref.NumClasses(j))
				}
				for i := range ref.Class[j] {
					if m.Class[j][i] != ref.Class[j][i] {
						t.Fatalf("%s workers=%d: Class[%d][%d] = %d, want %d",
							prof.name, workers, j, i, m.Class[j][i], ref.Class[j][i])
					}
				}
			}
		}
	}
}

// TestCheckpointResumeAcrossWorkerCounts interrupts a parallel build
// mid-restart-phase, then resumes it at every worker count; each resumed
// run must land exactly on the uninterrupted workers=1 result — the
// checkpoint's recorded seed schedule makes the remaining restarts a pure
// replay whatever the pool size.
func TestCheckpointResumeAcrossWorkerCounts(t *testing.T) {
	pr := prepareDet(t, "s27", experiment.Diagnostic)
	m := pr.Matrix

	opt := core.DefaultOptions
	opt.Seed = 23
	opt.Calls1 = 6
	opt.MaxRestarts = 25

	opt.Workers = 1
	dRef, stRef := core.BuildSameDiff(m, opt)
	if stRef.Restarts < 3 {
		t.Skipf("reference finished in %d restarts; nothing to interrupt", stRef.Restarts)
	}

	// Interrupt a 4-worker run once two restarts have been folded.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *core.Checkpoint
	optA := opt
	optA.Workers = 4
	optA.CheckpointEvery = 1
	optA.OnCheckpoint = func(cp core.Checkpoint) {
		c := cp
		last = &c
		if cp.Restarts >= 2 {
			cancel()
		}
	}
	_, stA, err := core.BuildSameDiffCtx(ctx, m, optA)
	if err != nil {
		t.Fatalf("interrupted build: %v", err)
	}
	if !stA.Interrupted || last == nil {
		t.Fatalf("setup failed: interrupted=%v checkpoint=%v", stA.Interrupted, last != nil)
	}
	if last.Restarts >= stRef.Restarts {
		t.Fatalf("checkpoint already has %d of %d restarts — cancel earlier", last.Restarts, stRef.Restarts)
	}

	for _, workers := range workerCounts() {
		o := opt
		o.Workers = workers
		o.Resume = last
		d, st, err := core.BuildSameDiffCtx(context.Background(), m, o)
		if err != nil {
			t.Fatalf("resume workers=%d: %v", workers, err)
		}
		if !st.Resumed || st.Interrupted {
			t.Fatalf("resume workers=%d: resumed=%v interrupted=%v", workers, st.Resumed, st.Interrupted)
		}
		st.Resumed = false // the only legitimate difference from the reference
		assertSameBuild(t, "resume workers="+itoa(workers), dRef, d, stRef, st)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

// TestObservabilityPureMeasurement (DESIGN.md §10): attaching a full
// Observer — metrics, trace, progress — must not change a single bit of
// the dictionary, the BuildStats, or the response matrix, at any worker
// count. And because the layers record only at ordered fold points, the
// counter values themselves must also be identical at every worker count.
func TestObservabilityPureMeasurement(t *testing.T) {
	for _, prof := range detProfiles {
		pr := prepareDet(t, prof.name, prof.tt)
		opt := core.DefaultOptions
		opt.Seed = 11
		opt.Calls1 = 8
		opt.MaxRestarts = 40

		opt.Workers = 1
		dRef, stRef := core.BuildSameDiff(pr.Matrix, opt)

		var refCounters map[string]int64
		for _, workers := range workerCounts() {
			var trace bytes.Buffer
			var progress bytes.Buffer
			// The clock is shared by the tracer (worker-side emits) and the
			// progress reporter (fold-side ticks), so it must be thread-safe
			// like time.Now.
			var now atomic.Int64
			clock := func() time.Time { return time.Unix(now.Add(1), 0) }
			m := obs.NewMetrics()
			ob := &obs.Observer{
				Metrics:  m,
				Trace:    obs.NewTracer(&trace, clock),
				Progress: obs.NewProgress(&progress, time.Second, clock, m),
			}
			o := opt
			o.Workers = workers
			o.Obs = ob
			saveArtifactOnFailure(t, "trace-"+prof.name+"-workers"+itoa(workers)+".jsonl", trace.Bytes)
			d, st := core.BuildSameDiff(pr.Matrix, o)
			assertSameBuild(t, prof.name+"/observed workers="+itoa(workers), dRef, d, stRef, st)
			if _, err := obs.ReadEvents(&trace); err != nil {
				t.Fatalf("%s workers=%d: trace does not parse: %v", prof.name, workers, err)
			}
			snap := m.Snapshot()
			if snap.Counters["restarts_run"] != int64(stRef.Restarts) {
				t.Fatalf("%s workers=%d: restarts_run = %d, BuildStats has %d",
					prof.name, workers, snap.Counters["restarts_run"], stRef.Restarts)
			}
			if snap.Counters["candidate_scans"] != stRef.CandidateEvals {
				t.Fatalf("%s workers=%d: candidate_scans = %d, BuildStats has %d",
					prof.name, workers, snap.Counters["candidate_scans"], stRef.CandidateEvals)
			}
			if refCounters == nil {
				refCounters = snap.Counters
			} else {
				for name, v := range snap.Counters {
					if v != refCounters[name] {
						t.Fatalf("%s workers=%d: counter %s = %d, workers=1 recorded %d",
							prof.name, workers, name, v, refCounters[name])
					}
				}
			}
		}

		// The observed response matrix must equal the unobserved one.
		view := netlist.NewScanView(pr.Circuit)
		for _, workers := range workerCounts() {
			ob := &obs.Observer{Metrics: obs.NewMetrics()}
			m, err := resp.BuildObsCtx(context.Background(), workers, view, pr.Faults, pr.Tests, ob)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", prof.name, workers, err)
			}
			for j := 0; j < pr.Matrix.K; j++ {
				for i := range pr.Matrix.Class[j] {
					if m.Class[j][i] != pr.Matrix.Class[j][i] {
						t.Fatalf("%s workers=%d: observed matrix Class[%d][%d] = %d, want %d",
							prof.name, workers, j, i, m.Class[j][i], pr.Matrix.Class[j][i])
					}
				}
			}
			if got := ob.M().Counter(obs.SimBatches); got == 0 {
				t.Fatalf("%s workers=%d: sim_batches not recorded", prof.name, workers)
			}
		}
	}
}

// TestInterruptedTraceEndsWithCheckpointSave: a build interrupted during
// the restart phase must leave a parseable trace whose final event is the
// checkpoint_save of the completed work — the invariant that makes an
// interrupted -trace-out file trustworthy for post-mortems.
func TestInterruptedTraceEndsWithCheckpointSave(t *testing.T) {
	pr := prepareDet(t, "s27", experiment.Diagnostic)
	m := pr.Matrix

	opt := core.DefaultOptions
	opt.Seed = 23
	opt.Calls1 = 6
	opt.MaxRestarts = 25
	opt.Workers = 4
	opt.CheckpointEvery = 1

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var trace bytes.Buffer
	saveArtifactOnFailure(t, "trace-interrupted.jsonl", trace.Bytes)
	opt.Obs = &obs.Observer{Metrics: obs.NewMetrics(), Trace: obs.NewTracer(&trace, nil)}
	opt.OnCheckpoint = func(cp core.Checkpoint) {
		if cp.Restarts >= 2 {
			cancel()
		}
	}
	_, st, err := core.BuildSameDiffCtx(ctx, m, opt)
	if err != nil {
		t.Fatalf("interrupted build: %v", err)
	}
	if !st.Interrupted {
		t.Skip("build finished before the cancel landed; nothing to assert")
	}
	events, err := obs.ReadEvents(&trace)
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("interrupted build left an empty trace")
	}
	last := events[len(events)-1]
	if last.Type != "checkpoint_save" {
		t.Fatalf("trace ends with %q, want checkpoint_save (events: %d)", last.Type, len(events))
	}
	if persisted, _ := last.Fields["persisted"].(bool); !persisted {
		t.Fatalf("final checkpoint_save not persisted: %v", last.Fields)
	}
	if got := opt.Obs.M().Counter(obs.CheckpointSaves); got < 2 {
		t.Fatalf("checkpoint_saves = %d, want >= 2", got)
	}
}
