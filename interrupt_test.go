package sddict_test

// End-to-end SIGINT contract for cmd/sdd (DESIGN.md §10): an interrupted
// run must exit with status 130, print the best-so-far report, and leave
// a trace file that parses as JSONL and ends on a checkpoint_save event —
// the durable record of the state the interrupted search got to.
//
// This is the only test that execs a built binary: signal delivery and
// exit statuses cannot be observed in-process. The in-process companion
// (TestInterruptedTraceEndsWithCheckpointSave) covers the same trace
// invariant without the process machinery.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sddict/internal/obs"
)

func TestSddInterruptEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a freshly built binary; skipped in -short mode")
	}
	// Artifacts (trace, metrics, checkpoint) go to the artifact dir so a
	// failing CI leg uploads them for sddstat post-mortems; the binary
	// stays in a throwaway temp dir.
	dir := artifactDir(t)
	bin := filepath.Join(t.TempDir(), "sdd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sdd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/sdd: %v\n%s", err, out)
	}

	// The signal must land inside the restart phase, which lasts a few
	// hundred milliseconds on s953 at full effort. The first restart_end
	// in the trace marks a folded restart (so the final checkpoint_save is
	// guaranteed), and each event is one durable append, so polling the
	// file gives a reliable cue. If the build still finishes first, one
	// retry absorbs the scheduling fluke.
	for attempt := 1; ; attempt++ {
		tracePath := filepath.Join(dir, "trace.jsonl")
		metricsPath := filepath.Join(dir, "metrics.json")
		os.Remove(tracePath)
		cmd := exec.Command(bin,
			"-circuit", "s953", "-tests", "diag", "-effort", "1", "-workers", "2",
			"-checkpoint", filepath.Join(dir, "ckpt.json"),
			"-trace-out", tracePath, "-metrics-out", metricsPath,
		)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}

		deadline := time.Now().Add(90 * time.Second)
		for !hasEvent(tracePath, "restart_end") {
			if time.Now().After(deadline) {
				cmd.Process.Kill()
				cmd.Wait()
				t.Fatalf("no restart_end event within 90s; stderr:\n%s", stderr.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
		if err := cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatal(err)
		}

		err := cmd.Wait()
		if err == nil {
			// The search outran the signal: the run completed cleanly.
			if attempt >= 2 {
				t.Fatal("signal missed the restart phase twice; giving up")
			}
			t.Logf("attempt %d completed before the signal landed; retrying", attempt)
			continue
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("interrupted run: want *exec.ExitError, got %v\nstdout:\n%s", err, stdout.String())
		}
		if code := ee.ExitCode(); code != 130 {
			t.Errorf("exit code = %d, want 130\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
		}

		out := stdout.String()
		if !strings.Contains(out, "INTERRUPTED") {
			t.Errorf("stdout missing best-so-far INTERRUPTED report:\n%s", out)
		}
		if !strings.Contains(out, "observability metrics:") {
			t.Errorf("stdout missing final metrics snapshot:\n%s", out)
		}
		if _, err := os.Stat(metricsPath); err != nil {
			t.Errorf("metrics file not written: %v", err)
		}

		tf, err := os.Open(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		defer tf.Close()
		events, err := obs.ReadEvents(tf)
		if err != nil {
			t.Fatalf("interrupted trace does not parse: %v", err)
		}
		if len(events) == 0 {
			t.Fatal("interrupted trace is empty")
		}
		last := events[len(events)-1]
		if last.Type != "checkpoint_save" {
			t.Errorf("trace ends with %q, want checkpoint_save (last event: %+v)", last.Type, last)
		}
		if persisted, _ := last.Fields["persisted"].(bool); !persisted {
			t.Errorf("final checkpoint_save not persisted despite -checkpoint: %+v", last)
		}
		return
	}
}

// hasEvent reports whether the JSONL trace at path currently contains an
// event of the given type. Partial trailing lines (a write racing the
// read) are tolerated: only complete lines are inspected.
func hasEvent(path, typ string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	needle := `"type":"` + typ + `"`
	for _, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, needle) {
			return true
		}
	}
	return false
}
